//! Core `Strategy` trait, combinators, and scalar strategies.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of test values. Unlike real proptest there is no value
/// tree / shrinking; `sample` draws one value.
pub trait Strategy {
    type Value: Debug;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(move |rng: &mut TestRng| self.sample(rng)),
        }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive samples",
            self.whence
        );
    }
}

/// Type-erased strategy; cheap to clone.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: Debug> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Self::new_weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights must not all be zero");
        Union { arms, total }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick within total")
    }
}

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

pub trait Arbitrary: Sized + Debug {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range integer strategy biased toward edge cases.
pub struct IntAny<T> {
    _marker: PhantomData<T>,
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Strategy for IntAny<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                // One draw in eight picks an edge value; extremes find
                // overflow/roundtrip bugs far faster than uniform bits.
                if rng.next_u64() % 8 == 0 {
                    const EDGES: [$ty; 4] = [0 as $ty, 1 as $ty, <$ty>::MIN, <$ty>::MAX];
                    EDGES[(rng.next_u64() % 4) as usize]
                } else {
                    rng.next_u64() as $ty
                }
            }
        }

        impl Arbitrary for $ty {
            type Strategy = IntAny<$ty>;
            fn arbitrary() -> IntAny<$ty> {
                IntAny { _marker: PhantomData }
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub struct BoolAny;

impl Strategy for BoolAny {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = BoolAny;
    fn arbitrary() -> BoolAny {
        BoolAny
    }
}

/// Finite floats only (no NaN/inf), matching proptest's default `ANY`.
pub struct FloatAny<T> {
    _marker: PhantomData<T>,
}

macro_rules! arbitrary_float {
    ($($ty:ty),*) => {$(
        impl Strategy for FloatAny<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                if rng.next_u64() % 8 == 0 {
                    const EDGES: [$ty; 5] =
                        [0.0, -0.0, 1.0, <$ty>::MIN_POSITIVE, <$ty>::MAX];
                    EDGES[(rng.next_u64() % 5) as usize]
                } else {
                    // Scale a signed integer by a random power of two;
                    // always finite.
                    let mantissa = rng.next_u64() as i64 as $ty;
                    let exp = (rng.next_u64() % 64) as i32 - 32;
                    let v = mantissa * (2.0 as $ty).powi(exp);
                    if v.is_finite() { v } else { 0.0 }
                }
            }
        }

        impl Arbitrary for $ty {
            type Strategy = FloatAny<$ty>;
            fn arbitrary() -> FloatAny<$ty> {
                FloatAny { _marker: PhantomData }
            }
        }
    )*};
}

arbitrary_float!(f32, f64);

pub struct CharAny;

impl Strategy for CharAny {
    type Value = char;
    fn sample(&self, rng: &mut TestRng) -> char {
        crate::test_runner::printable_char(rng)
    }
}

impl Arbitrary for char {
    type Strategy = CharAny;
    fn arbitrary() -> CharAny {
        CharAny
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $ty
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $ty) * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.next_f64() as $ty) * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident)+),)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 S0),
    (0 S0 1 S1),
    (0 S0 1 S1 2 S2),
    (0 S0 1 S1 2 S2 3 S3),
    (0 S0 1 S1 2 S2 3 S3 4 S4),
    (0 S0 1 S1 2 S2 3 S3 4 S4 5 S5),
    (0 S0 1 S1 2 S2 3 S3 4 S4 5 S5 6 S6),
    (0 S0 1 S1 2 S2 3 S3 4 S4 5 S5 6 S6 7 S7),
    (0 S0 1 S1 2 S2 3 S3 4 S4 5 S5 6 S6 7 S7 8 S8),
    (0 S0 1 S1 2 S2 3 S3 4 S4 5 S5 6 S6 7 S7 8 S8 9 S9),
}

// ---------------------------------------------------------------------------
// Regex-lite string strategies (`"[a-z0-9]{1,8}"` as a Strategy)
// ---------------------------------------------------------------------------

/// One parsed pattern atom: a set of candidate chars plus a repeat range.
struct Atom {
    /// Inclusive char ranges to draw from.
    ranges: Vec<(u32, u32)>,
    /// `true` for `[\PC]` (any printable character).
    printable: bool,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let mut atom = Atom {
            ranges: Vec::new(),
            printable: false,
            min: 1,
            max: 1,
        };
        if chars[i] == '[' {
            i += 1;
            let mut members: Vec<char> = Vec::new();
            while i < chars.len() && chars[i] != ']' {
                if chars[i] == '\\' {
                    // `\PC` (printable: not category C) or an escaped
                    // literal.
                    if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                        atom.printable = true;
                        i += 3;
                    } else {
                        members.push(chars[i + 1]);
                        i += 2;
                    }
                } else if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    atom.ranges.push((chars[i] as u32, chars[i + 2] as u32));
                    i += 3;
                } else {
                    members.push(chars[i]);
                    i += 1;
                }
            }
            assert!(
                i < chars.len(),
                "unterminated char class in pattern {pattern:?}"
            );
            i += 1; // skip ']'
            for m in members {
                atom.ranges.push((m as u32, m as u32));
            }
        } else {
            // Literal character atom.
            let c = chars[i];
            atom.ranges.push((c as u32, c as u32));
            i += 1;
        }
        // Optional {m,n} / {m} repeat.
        if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated repeat in pattern")
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            if let Some((lo, hi)) = spec.split_once(',') {
                atom.min = lo.trim().parse().expect("bad repeat min");
                atom.max = hi.trim().parse().expect("bad repeat max");
            } else {
                atom.min = spec.trim().parse().expect("bad repeat count");
                atom.max = atom.min;
            }
            i = close + 1;
        }
        atoms.push(atom);
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = if atom.max <= atom.min {
                atom.min
            } else {
                atom.min + (rng.next_u64() as usize) % (atom.max - atom.min + 1)
            };
            for _ in 0..count {
                if atom.printable {
                    out.push(crate::test_runner::printable_char(rng));
                    continue;
                }
                // Pick a range weighted by its width, then a char in it.
                let total: u64 = atom
                    .ranges
                    .iter()
                    .map(|(lo, hi)| (hi - lo + 1) as u64)
                    .sum();
                assert!(total > 0, "empty char class in string strategy");
                let mut pick = rng.next_u64() % total;
                for (lo, hi) in &atom.ranges {
                    let width = (hi - lo + 1) as u64;
                    if pick < width {
                        if let Some(c) = char::from_u32(lo + pick as u32) {
                            out.push(c);
                        }
                        break;
                    }
                    pick -= width;
                }
            }
        }
        out
    }
}
