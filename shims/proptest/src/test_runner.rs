//! Test-runner pieces: deterministic RNG, config, and case errors.

use std::fmt;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed (not panicked) property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Rejection is reported like failure here (no global rejection
    /// budget in the shim).
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// SplitMix64 — deterministic per test name, so failures reproduce
/// across runs and machines.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test seed.
        let mut seed: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100000001b3);
        }
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A printable (non-control) char: mostly ASCII, sometimes wider
/// unicode so string handling sees multi-byte encodings.
pub fn printable_char(rng: &mut TestRng) -> char {
    match rng.next_u64() % 10 {
        0 => {
            // Latin-1 supplement / Latin extended letters.
            char::from_u32(0xC0 + (rng.next_u64() % 0x100) as u32).unwrap_or('å')
        }
        1 => {
            // CJK ideographs (3-byte UTF-8).
            char::from_u32(0x4E00 + (rng.next_u64() % 0x1000) as u32).unwrap_or('中')
        }
        2 => {
            // Emoji (4-byte UTF-8).
            char::from_u32(0x1F600 + (rng.next_u64() % 0x40) as u32).unwrap_or('😀')
        }
        _ => (0x20 + (rng.next_u64() % 0x5F) as u8) as char,
    }
}
