//! Offline shim for the `proptest` crate.
//!
//! Provides the subset of proptest's API the workspace's property tests
//! use: the `proptest!` / `prop_assert!` / `prop_assert_eq!` /
//! `prop_oneof!` macros, the `Strategy` trait with `prop_map` /
//! `prop_flat_map` / `prop_filter` / `boxed`, `any::<T>()`, integer
//! range strategies, regex-lite string strategies, and the
//! `collection` / `option` / `bool` / `char` / `sample` modules.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its inputs but is not minimized), and generation is deterministic
//! per test name so CI failures reproduce.

pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of `proptest::prelude::prop`: module-style access to the
    /// strategy factories.
    pub mod prop {
        pub use crate::bool;
        pub use crate::char;
        pub use crate::collection;
        pub use crate::num;
        pub use crate::option;
        pub use crate::sample;
    }
}

// ---------------------------------------------------------------------------
// Strategy factories, organized like proptest's module tree
// ---------------------------------------------------------------------------

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Size specification for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        pub min: usize,
        /// Inclusive.
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max: r.end.saturating_sub(1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            if self.max <= self.min {
                self.min
            } else {
                self.min + (rng.next_u64() as usize) % (self.max - self.min + 1)
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord + Debug,
        V::Value: Debug,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len)
                .map(|_| (self.key.sample(rng), self.value.sample(rng)))
                .collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` roughly one time in five, like proptest's default weight.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64().is_multiple_of(5) {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct Weighted {
        pub probability: f64,
    }

    /// `true` with the given probability.
    pub fn weighted(probability: f64) -> Weighted {
        Weighted { probability }
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_f64() < self.probability
        }
    }
}

pub mod char {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct CharRange {
        lo: char,
        hi: char,
    }

    /// Characters in `lo..=hi`.
    pub fn range(lo: char, hi: char) -> CharRange {
        CharRange { lo, hi }
    }

    impl Strategy for CharRange {
        type Value = char;
        fn sample(&self, rng: &mut TestRng) -> char {
            let lo = self.lo as u32;
            let hi = self.hi as u32;
            for _ in 0..64 {
                let v = lo + (rng.next_u64() as u32) % (hi - lo + 1);
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            }
            self.lo
        }
    }
}

pub mod sample {
    use crate::strategy::{Arbitrary, Strategy};
    use crate::test_runner::TestRng;

    /// An index into a not-yet-known-length collection.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Resolves against a concrete collection length.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    pub struct IndexStrategy;

    impl Strategy for IndexStrategy {
        type Value = Index;
        fn sample(&self, rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }

    impl Arbitrary for Index {
        type Strategy = IndexStrategy;
        fn arbitrary() -> IndexStrategy {
            IndexStrategy
        }
    }

    /// Uniform choice from a fixed set of values.
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        Select { options }
    }

    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() as usize) % self.options.len();
            self.options[i].clone()
        }
    }
}

pub mod num {
    // Numeric submodules exist in real proptest (`prop::num::f64::ANY`
    // etc.); the workspace reaches numbers through `any::<T>()` and
    // ranges instead, so this is intentionally empty.
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = $config:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:tt)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __config = $config;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..__config.cases {
                    let __vals = ($($crate::strategy::Strategy::sample(&($strat), &mut __rng),)*);
                    let __vals_repr = format!("{:?}", __vals);
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> = {
                        let ($($pat,)*) = __vals;
                        #[allow(clippy::redundant_closure_call)]
                        (move || { $body Ok(()) })()
                    };
                    if let Err(__e) = __result {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            __case + 1, __config.cases, __e, __vals_repr
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        // `match` (not `let`) so temporaries in the operands live for
        // the whole comparison.
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    __l, __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l == *__r, $($fmt)*);
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
                    __l, __r
                );
            }
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
