//! Offline shim for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` by
//! parsing the item's token stream by hand (the environment has no
//! `syn`/`quote`) and emitting impls against the sibling `serde` shim's
//! data model. Supported shapes are exactly what this workspace uses:
//! non-generic structs (named / tuple / unit) and enums (all four
//! variant shapes), plus the `#[serde(transparent)]` and
//! `#[serde(with = "module")]` attributes. Anything else panics at
//! compile time rather than silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Field {
    /// `None` for tuple fields.
    name: Option<String>,
    ty: String,
    with: Option<String>,
}

struct Variant {
    name: String,
    style: Style,
    fields: Vec<Field>,
}

#[derive(PartialEq, Clone, Copy)]
enum Style {
    Named,
    Tuple,
    Unit,
}

enum Kind {
    Struct {
        style: Style,
        fields: Vec<Field>,
        transparent: bool,
    },
    Enum {
        variants: Vec<Variant>,
    },
}

struct Input {
    name: String,
    kind: Kind,
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

/// Serde-relevant attribute content gathered while skipping attributes.
#[derive(Default)]
struct SerdeAttrs {
    transparent: bool,
    with: Option<String>,
}

fn is_punct(tree: &TokenTree, ch: char) -> bool {
    matches!(tree, TokenTree::Punct(p) if p.as_char() == ch)
}

fn is_ident(tree: &TokenTree, word: &str) -> bool {
    matches!(tree, TokenTree::Ident(i) if i.to_string() == word)
}

/// Consumes leading `#[...]` attributes, folding any `#[serde(...)]`
/// content into the returned attrs.
fn skip_attributes(tokens: &[TokenTree], mut idx: usize) -> (usize, SerdeAttrs) {
    let mut attrs = SerdeAttrs::default();
    while idx < tokens.len() && is_punct(&tokens[idx], '#') {
        let TokenTree::Group(group) = &tokens[idx + 1] else {
            panic!("expected [...] after # in attribute");
        };
        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
        if !inner.is_empty() && is_ident(&inner[0], "serde") {
            let TokenTree::Group(args) = &inner[1] else {
                panic!("expected parenthesized args in #[serde(...)]");
            };
            parse_serde_args(&args.stream().into_iter().collect::<Vec<_>>(), &mut attrs);
        }
        idx += 2;
    }
    (idx, attrs)
}

fn parse_serde_args(args: &[TokenTree], attrs: &mut SerdeAttrs) {
    let mut i = 0;
    while i < args.len() {
        match &args[i] {
            TokenTree::Ident(id) if id.to_string() == "transparent" => {
                attrs.transparent = true;
                i += 1;
            }
            TokenTree::Ident(id) if id.to_string() == "with" => {
                assert!(
                    is_punct(&args[i + 1], '='),
                    "expected `with = \"path\"` in #[serde(...)]"
                );
                let lit = args[i + 2].to_string();
                attrs.with = Some(lit.trim_matches('"').to_string());
                i += 3;
            }
            other => panic!(
                "unsupported #[serde({other})] attribute — the offline serde shim \
                 supports only `transparent` and `with = \"module\"`"
            ),
        }
        if i < args.len() && is_punct(&args[i], ',') {
            i += 1;
        }
    }
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn skip_visibility(tokens: &[TokenTree], mut idx: usize) -> usize {
    if idx < tokens.len() && is_ident(&tokens[idx], "pub") {
        idx += 1;
        if idx < tokens.len() {
            if let TokenTree::Group(g) = &tokens[idx] {
                if g.delimiter() == Delimiter::Parenthesis {
                    idx += 1;
                }
            }
        }
    }
    idx
}

/// Collects type tokens until a comma at angle-bracket depth zero.
fn collect_type(tokens: &[TokenTree], mut idx: usize) -> (usize, String) {
    let mut depth: i32 = 0;
    let mut collected: Vec<TokenTree> = Vec::new();
    while idx < tokens.len() {
        match &tokens[idx] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
            _ => {}
        }
        collected.push(tokens[idx].clone());
        idx += 1;
    }
    // Round-trip through a TokenStream so `::` and friends keep their
    // joint spacing when stringified.
    let stream: TokenStream = collected.into_iter().collect();
    (idx, stream.to_string())
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut idx = 0;
    while idx < tokens.len() {
        let (next, attrs) = skip_attributes(&tokens, idx);
        idx = skip_visibility(&tokens, next);
        let name = tokens[idx].to_string();
        idx += 1;
        assert!(is_punct(&tokens[idx], ':'), "expected `:` after field name");
        idx += 1;
        let (next, ty) = collect_type(&tokens, idx);
        idx = next;
        if idx < tokens.len() && is_punct(&tokens[idx], ',') {
            idx += 1;
        }
        fields.push(Field {
            name: Some(name),
            ty,
            with: attrs.with,
        });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut idx = 0;
    while idx < tokens.len() {
        let (next, attrs) = skip_attributes(&tokens, idx);
        idx = skip_visibility(&tokens, next);
        let (next, ty) = collect_type(&tokens, idx);
        idx = next;
        if idx < tokens.len() && is_punct(&tokens[idx], ',') {
            idx += 1;
        }
        fields.push(Field {
            name: None,
            ty,
            with: attrs.with,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut idx = 0;
    while idx < tokens.len() {
        let (next, _attrs) = skip_attributes(&tokens, idx);
        idx = next;
        let name = tokens[idx].to_string();
        idx += 1;
        let (style, fields) = if idx < tokens.len() {
            match &tokens[idx] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    idx += 1;
                    (Style::Tuple, parse_tuple_fields(g.stream()))
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    idx += 1;
                    (Style::Named, parse_named_fields(g.stream()))
                }
                _ => (Style::Unit, Vec::new()),
            }
        } else {
            (Style::Unit, Vec::new())
        };
        if idx < tokens.len() && is_punct(&tokens[idx], '=') {
            panic!("explicit enum discriminants are not supported by the serde shim derive");
        }
        if idx < tokens.len() && is_punct(&tokens[idx], ',') {
            idx += 1;
        }
        variants.push(Variant {
            name,
            style,
            fields,
        });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (idx, attrs) = skip_attributes(&tokens, 0);
    let mut idx = skip_visibility(&tokens, idx);

    let is_struct = if is_ident(&tokens[idx], "struct") {
        true
    } else if is_ident(&tokens[idx], "enum") {
        false
    } else {
        panic!("serde shim derive supports only structs and enums");
    };
    idx += 1;

    let name = tokens[idx].to_string();
    idx += 1;

    if idx < tokens.len() && is_punct(&tokens[idx], '<') {
        panic!("generic types are not supported by the offline serde shim derive");
    }

    if is_struct {
        match tokens.get(idx) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input {
                name,
                kind: Kind::Struct {
                    style: Style::Named,
                    fields: parse_named_fields(g.stream()),
                    transparent: attrs.transparent,
                },
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Input {
                name,
                kind: Kind::Struct {
                    style: Style::Tuple,
                    fields: parse_tuple_fields(g.stream()),
                    transparent: attrs.transparent,
                },
            },
            Some(t) if is_punct(t, ';') => Input {
                name,
                kind: Kind::Struct {
                    style: Style::Unit,
                    fields: Vec::new(),
                    transparent: false,
                },
            },
            other => panic!("unexpected token after struct name: {other:?}"),
        }
    } else {
        match tokens.get(idx) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input {
                name,
                kind: Kind::Enum {
                    variants: parse_variants(g.stream()),
                },
            },
            other => panic!("unexpected token after enum name: {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct {
            style,
            fields,
            transparent,
        } => serialize_struct_body(name, *style, fields, *transparent),
        Kind::Enum { variants } => serialize_enum_body(name, variants),
    };
    let out = format!(
        "#[automatically_derived]\n\
         impl serde::ser::Serialize for {name} {{\n\
             fn serialize<__S: serde::ser::Serializer>(&self, __serializer: __S)\n\
                 -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    );
    out.parse().expect("serialize impl should parse")
}

/// Emits `__st.serialize_field(...)` (or element) for one field, routing
/// `#[serde(with = ...)]` through a local wrapper type.
fn ser_field(target: &str, idx: usize, field: &Field, method: &str) -> String {
    let access = match &field.name {
        Some(n) => format!("&self.{n}"),
        None => format!("&self.{idx}"),
    };
    let key = match (&field.name, method) {
        (Some(n), "serialize_field") => format!("\"{n}\", "),
        _ => String::new(),
    };
    match &field.with {
        None => format!("{target}.{method}({key}{access})?;"),
        Some(path) => {
            let ty = &field.ty;
            format!(
                "{{\n\
                     struct __With{idx}<'__a>(&'__a {ty});\n\
                     impl<'__a> serde::ser::Serialize for __With{idx}<'__a> {{\n\
                         fn serialize<__S2: serde::ser::Serializer>(&self, __s: __S2)\n\
                             -> ::std::result::Result<__S2::Ok, __S2::Error> {{\n\
                             {path}::serialize(self.0, __s)\n\
                         }}\n\
                     }}\n\
                     {target}.{method}({key}&__With{idx}({access}))?;\n\
                 }}"
            )
        }
    }
}

fn serialize_struct_body(name: &str, style: Style, fields: &[Field], transparent: bool) -> String {
    match style {
        Style::Unit => format!("serde::ser::Serializer::serialize_unit_struct(__serializer, \"{name}\")"),
        Style::Tuple if transparent || fields.len() == 1 => {
            if transparent {
                "serde::ser::Serialize::serialize(&self.0, __serializer)".to_string()
            } else {
                format!(
                    "serde::ser::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)"
                )
            }
        }
        Style::Tuple => {
            let n = fields.len();
            let mut body = format!(
                "use serde::ser::SerializeTupleStruct as _;\n\
                 let mut __st = serde::ser::Serializer::serialize_tuple_struct(__serializer, \"{name}\", {n})?;\n"
            );
            for (i, f) in fields.iter().enumerate() {
                body.push_str(&ser_field("__st", i, f, "serialize_field"));
                body.push('\n');
            }
            body.push_str("__st.end()");
            body
        }
        Style::Named if transparent => {
            assert!(
                fields.len() == 1,
                "#[serde(transparent)] requires exactly one field"
            );
            let f = fields[0].name.as_ref().unwrap();
            format!("serde::ser::Serialize::serialize(&self.{f}, __serializer)")
        }
        Style::Named => {
            let n = fields.len();
            let mut body = format!(
                "use serde::ser::SerializeStruct as _;\n\
                 let mut __st = serde::ser::Serializer::serialize_struct(__serializer, \"{name}\", {n})?;\n"
            );
            for (i, f) in fields.iter().enumerate() {
                body.push_str(&ser_field("__st", i, f, "serialize_field"));
                body.push('\n');
            }
            body.push_str("__st.end()");
            body
        }
    }
}

fn serialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for (vi, v) in variants.iter().enumerate() {
        let vname = &v.name;
        match v.style {
            Style::Unit => {
                arms.push_str(&format!(
                    "{name}::{vname} => serde::ser::Serializer::serialize_unit_variant(\
                         __serializer, \"{name}\", {vi}u32, \"{vname}\"),\n"
                ));
            }
            Style::Tuple if v.fields.len() == 1 => {
                arms.push_str(&format!(
                    "{name}::{vname}(__f0) => serde::ser::Serializer::serialize_newtype_variant(\
                         __serializer, \"{name}\", {vi}u32, \"{vname}\", __f0),\n"
                ));
            }
            Style::Tuple => {
                let n = v.fields.len();
                let binders: Vec<String> = (0..n).map(|i| format!("__f{i}")).collect();
                let mut arm = format!(
                    "{name}::{vname}({binds}) => {{\n\
                         use serde::ser::SerializeTupleVariant as _;\n\
                         let mut __st = serde::ser::Serializer::serialize_tuple_variant(\
                             __serializer, \"{name}\", {vi}u32, \"{vname}\", {n})?;\n",
                    binds = binders.join(", ")
                );
                for b in &binders {
                    arm.push_str(&format!("__st.serialize_field({b})?;\n"));
                }
                arm.push_str("__st.end()\n},\n");
                arms.push_str(&arm);
            }
            Style::Named => {
                let n = v.fields.len();
                let names: Vec<&String> =
                    v.fields.iter().map(|f| f.name.as_ref().unwrap()).collect();
                let mut arm = format!(
                    "{name}::{vname} {{ {binds} }} => {{\n\
                         use serde::ser::SerializeStructVariant as _;\n\
                         let mut __st = serde::ser::Serializer::serialize_struct_variant(\
                             __serializer, \"{name}\", {vi}u32, \"{vname}\", {n})?;\n",
                    binds = names
                        .iter()
                        .map(|s| s.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                for f in &names {
                    arm.push_str(&format!("__st.serialize_field(\"{f}\", {f})?;\n"));
                }
                arm.push_str("__st.end()\n},\n");
                arms.push_str(&arm);
            }
        }
    }
    format!("match self {{\n{arms}\n}}")
}

// ---------------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------------

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct {
            style,
            fields,
            transparent,
        } => deserialize_struct_body(name, *style, fields, *transparent),
        Kind::Enum { variants } => deserialize_enum_body(name, variants),
    };
    let out = format!(
        "#[automatically_derived]\n\
         impl<'de> serde::de::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: serde::de::Deserializer<'de>>(__deserializer: __D)\n\
                 -> ::std::result::Result<Self, __D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    );
    out.parse().expect("deserialize impl should parse")
}

/// Emits per-`with`-field `DeserializeSeed` types named `__Seed{i}`.
fn with_seeds(fields: &[Field]) -> String {
    let mut out = String::new();
    for (i, f) in fields.iter().enumerate() {
        if let Some(path) = &f.with {
            let ty = &f.ty;
            out.push_str(&format!(
                "struct __Seed{i};\n\
                 impl<'de> serde::de::DeserializeSeed<'de> for __Seed{i} {{\n\
                     type Value = {ty};\n\
                     fn deserialize<__D2: serde::de::Deserializer<'de>>(self, __d: __D2)\n\
                         -> ::std::result::Result<Self::Value, __D2::Error> {{\n\
                         {path}::deserialize(__d)\n\
                     }}\n\
                 }}\n"
            ));
        }
    }
    out
}

/// `visit_seq` body constructing `ctor` from positional fields.
/// `named` distinguishes braced from tuple/unit construction when the
/// field list is empty (`Name {}` vs `Name`).
fn visit_seq_body(ctor: &str, expect: &str, fields: &[Field], named: bool) -> String {
    let mut body = String::new();
    for (i, f) in fields.iter().enumerate() {
        let ty = &f.ty;
        let next = match &f.with {
            None => format!("serde::de::SeqAccess::next_element::<{ty}>(&mut __seq)?"),
            Some(_) => format!("serde::de::SeqAccess::next_element_seed(&mut __seq, __Seed{i})?"),
        };
        body.push_str(&format!(
            "let __f{i}: {ty} = match {next} {{\n\
                 Some(__v) => __v,\n\
                 None => return Err(serde::de::Error::invalid_length({i}usize, &\"{expect}\")),\n\
             }};\n"
        ));
    }
    let args: Vec<String> = (0..fields.len()).map(|i| format!("__f{i}")).collect();
    let construct = if named {
        let parts: Vec<String> = fields
            .iter()
            .enumerate()
            .map(|(i, f)| format!("{}: __f{i}", f.name.as_ref().unwrap()))
            .collect();
        format!("{ctor} {{ {} }}", parts.join(", "))
    } else if fields.is_empty() {
        ctor.to_string()
    } else {
        format!("{ctor}({})", args.join(", "))
    };
    body.push_str(&format!("Ok({construct})"));
    body
}

/// True when a field's (stringified) type is `Option<...>` under any
/// of its usual spellings.
fn is_option_type(ty: &str) -> bool {
    let compact: String = ty.chars().filter(|c| !c.is_whitespace()).collect();
    compact.starts_with("Option<")
        || compact.starts_with("std::option::Option<")
        || compact.starts_with("::std::option::Option<")
        || compact.starts_with("core::option::Option<")
        || compact.starts_with("::core::option::Option<")
}

/// `visit_map` body for named fields: match keys by name, error on
/// missing (except `Option`, which defaults to `None`), skip unknown.
fn visit_map_body(ctor: &str, fields: &[Field]) -> String {
    let mut body = String::new();
    for (i, f) in fields.iter().enumerate() {
        let ty = &f.ty;
        body.push_str(&format!(
            "let mut __f{i}: ::std::option::Option<{ty}> = ::std::option::Option::None;\n"
        ));
    }
    body.push_str(
        "while let Some(__key) = serde::de::MapAccess::next_key::<::std::string::String>(&mut __map)? {\n\
             match __key.as_str() {\n",
    );
    for (i, f) in fields.iter().enumerate() {
        let fname = f.name.as_ref().unwrap();
        let next = match &f.with {
            None => "serde::de::MapAccess::next_value(&mut __map)?".to_string(),
            Some(_) => format!("serde::de::MapAccess::next_value_seed(&mut __map, __Seed{i})?"),
        };
        body.push_str(&format!(
            "\"{fname}\" => {{ __f{i} = ::std::option::Option::Some({next}); }}\n"
        ));
    }
    body.push_str(
        "_ => { let _ = serde::de::MapAccess::next_value::<serde::de::IgnoredAny>(&mut __map)?; }\n\
             }\n\
         }\n",
    );
    let parts: Vec<String> = fields
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let fname = f.name.as_ref().unwrap();
            if is_option_type(&f.ty) {
                // Real serde treats an absent `Option<T>` field as None
                // rather than a missing-field error.
                format!("{fname}: __f{i}.unwrap_or(::std::option::Option::None)")
            } else {
                format!(
                    "{fname}: match __f{i} {{\n\
                         ::std::option::Option::Some(__v) => __v,\n\
                         ::std::option::Option::None => \
                             return Err(serde::de::Error::missing_field(\"{fname}\")),\n\
                     }}"
                )
            }
        })
        .collect();
    body.push_str(&format!("Ok({ctor} {{ {} }})", parts.join(", ")));
    body
}

fn deserialize_struct_body(
    name: &str,
    style: Style,
    fields: &[Field],
    transparent: bool,
) -> String {
    match style {
        Style::Unit => format!(
            "struct __Visitor;\n\
             impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
                     __f.write_str(\"unit struct {name}\")\n\
                 }}\n\
                 fn visit_unit<__E: serde::de::Error>(self) -> ::std::result::Result<{name}, __E> {{\n\
                     Ok({name})\n\
                 }}\n\
             }}\n\
             serde::de::Deserializer::deserialize_unit_struct(__deserializer, \"{name}\", __Visitor)"
        ),
        Style::Tuple if transparent || fields.len() == 1 => {
            if transparent {
                format!("Ok({name}(serde::de::Deserialize::deserialize(__deserializer)?))")
            } else {
                let ty = &fields[0].ty;
                format!(
                    "struct __Visitor;\n\
                     impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
                         type Value = {name};\n\
                         fn expecting(&self, __f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
                             __f.write_str(\"newtype struct {name}\")\n\
                         }}\n\
                         fn visit_newtype_struct<__D2: serde::de::Deserializer<'de>>(self, __d: __D2)\n\
                             -> ::std::result::Result<{name}, __D2::Error> {{\n\
                             Ok({name}(<{ty} as serde::de::Deserialize>::deserialize(__d)?))\n\
                         }}\n\
                         fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
                             -> ::std::result::Result<{name}, __A::Error> {{\n\
                             match serde::de::SeqAccess::next_element::<{ty}>(&mut __seq)? {{\n\
                                 Some(__v) => Ok({name}(__v)),\n\
                                 None => Err(serde::de::Error::invalid_length(0usize, &\"newtype struct {name}\")),\n\
                             }}\n\
                         }}\n\
                     }}\n\
                     serde::de::Deserializer::deserialize_newtype_struct(__deserializer, \"{name}\", __Visitor)"
                )
            }
        }
        Style::Tuple => {
            let n = fields.len();
            let seeds = with_seeds(fields);
            let seq = visit_seq_body(name, &format!("tuple struct {name}"), fields, false);
            format!(
                "{seeds}\n\
                 struct __Visitor;\n\
                 impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
                     type Value = {name};\n\
                     fn expecting(&self, __f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
                         __f.write_str(\"tuple struct {name}\")\n\
                     }}\n\
                     fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
                         -> ::std::result::Result<{name}, __A::Error> {{\n\
                         {seq}\n\
                     }}\n\
                 }}\n\
                 serde::de::Deserializer::deserialize_tuple_struct(__deserializer, \"{name}\", {n}, __Visitor)"
            )
        }
        Style::Named if transparent => {
            let f = fields[0].name.as_ref().unwrap();
            format!(
                "Ok({name} {{ {f}: serde::de::Deserialize::deserialize(__deserializer)? }})"
            )
        }
        Style::Named => {
            let seeds = with_seeds(fields);
            let seq = visit_seq_body(name, &format!("struct {name}"), fields, true);
            let map = visit_map_body(name, fields);
            let field_names: Vec<String> = fields
                .iter()
                .map(|f| format!("\"{}\"", f.name.as_ref().unwrap()))
                .collect();
            format!(
                "{seeds}\n\
                 const __FIELDS: &'static [&'static str] = &[{field_list}];\n\
                 struct __Visitor;\n\
                 impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
                     type Value = {name};\n\
                     fn expecting(&self, __f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
                         __f.write_str(\"struct {name}\")\n\
                     }}\n\
                     fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
                         -> ::std::result::Result<{name}, __A::Error> {{\n\
                         {seq}\n\
                     }}\n\
                     fn visit_map<__A: serde::de::MapAccess<'de>>(self, mut __map: __A)\n\
                         -> ::std::result::Result<{name}, __A::Error> {{\n\
                         {map}\n\
                     }}\n\
                 }}\n\
                 serde::de::Deserializer::deserialize_struct(__deserializer, \"{name}\", __FIELDS, __Visitor)",
                field_list = field_names.join(", ")
            )
        }
    }
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let n = variants.len();
    let variant_names: Vec<String> = variants.iter().map(|v| format!("\"{}\"", v.name)).collect();

    // Variant-identifier deserializer: accepts an index (binary formats)
    // or a name string (self-describing formats).
    let str_arms: String = variants
        .iter()
        .enumerate()
        .map(|(i, v)| format!("\"{}\" => Ok(__VariantTag({i}u32)),\n", v.name))
        .collect();

    let mut match_arms = String::new();
    for (vi, v) in variants.iter().enumerate() {
        let vname = &v.name;
        let arm_body = match v.style {
            Style::Unit => format!(
                "{{ serde::de::VariantAccess::unit_variant(__access)?; Ok({name}::{vname}) }}"
            ),
            Style::Tuple if v.fields.len() == 1 => {
                let ty = &v.fields[0].ty;
                format!(
                    "{{ Ok({name}::{vname}(serde::de::VariantAccess::newtype_variant::<{ty}>(__access)?)) }}"
                )
            }
            Style::Tuple => {
                let len = v.fields.len();
                let seq = visit_seq_body(
                    &format!("{name}::{vname}"),
                    &format!("tuple variant {name}::{vname}"),
                    &v.fields,
                    false,
                );
                format!(
                    "{{\n\
                         struct __TupleVisitor{vi};\n\
                         impl<'de> serde::de::Visitor<'de> for __TupleVisitor{vi} {{\n\
                             type Value = {name};\n\
                             fn expecting(&self, __f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
                                 __f.write_str(\"tuple variant {name}::{vname}\")\n\
                             }}\n\
                             fn visit_seq<__A2: serde::de::SeqAccess<'de>>(self, mut __seq: __A2)\n\
                                 -> ::std::result::Result<{name}, __A2::Error> {{\n\
                                 {seq}\n\
                             }}\n\
                         }}\n\
                         serde::de::VariantAccess::tuple_variant(__access, {len}usize, __TupleVisitor{vi})\n\
                     }}"
                )
            }
            Style::Named => {
                let seq = visit_seq_body(
                    &format!("{name}::{vname}"),
                    &format!("struct variant {name}::{vname}"),
                    &v.fields,
                    true,
                );
                let map = visit_map_body(&format!("{name}::{vname}"), &v.fields);
                let field_names: Vec<String> = v
                    .fields
                    .iter()
                    .map(|f| format!("\"{}\"", f.name.as_ref().unwrap()))
                    .collect();
                format!(
                    "{{\n\
                         struct __StructVisitor{vi};\n\
                         impl<'de> serde::de::Visitor<'de> for __StructVisitor{vi} {{\n\
                             type Value = {name};\n\
                             fn expecting(&self, __f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
                                 __f.write_str(\"struct variant {name}::{vname}\")\n\
                             }}\n\
                             fn visit_seq<__A2: serde::de::SeqAccess<'de>>(self, mut __seq: __A2)\n\
                                 -> ::std::result::Result<{name}, __A2::Error> {{\n\
                                 {seq}\n\
                             }}\n\
                             fn visit_map<__A2: serde::de::MapAccess<'de>>(self, mut __map: __A2)\n\
                                 -> ::std::result::Result<{name}, __A2::Error> {{\n\
                                 {map}\n\
                             }}\n\
                         }}\n\
                         serde::de::VariantAccess::struct_variant(__access, &[{fields}], __StructVisitor{vi})\n\
                     }}",
                    fields = field_names.join(", ")
                )
            }
        };
        match_arms.push_str(&format!("{vi}u32 => {arm_body},\n"));
    }

    format!(
        "const __VARIANTS: &'static [&'static str] = &[{variant_list}];\n\
         struct __VariantTag(u32);\n\
         impl<'de> serde::de::Deserialize<'de> for __VariantTag {{\n\
             fn deserialize<__D2: serde::de::Deserializer<'de>>(__d: __D2)\n\
                 -> ::std::result::Result<Self, __D2::Error> {{\n\
                 struct __TagVisitor;\n\
                 impl<'de> serde::de::Visitor<'de> for __TagVisitor {{\n\
                     type Value = __VariantTag;\n\
                     fn expecting(&self, __f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
                         __f.write_str(\"variant identifier\")\n\
                     }}\n\
                     fn visit_u64<__E: serde::de::Error>(self, __v: u64)\n\
                         -> ::std::result::Result<__VariantTag, __E> {{\n\
                         if __v < {n}u64 {{ Ok(__VariantTag(__v as u32)) }}\n\
                         else {{ Err(serde::de::Error::unknown_variant(&__v.to_string(), __VARIANTS)) }}\n\
                     }}\n\
                     fn visit_str<__E: serde::de::Error>(self, __v: &str)\n\
                         -> ::std::result::Result<__VariantTag, __E> {{\n\
                         match __v {{\n\
                             {str_arms}\n\
                             _ => Err(serde::de::Error::unknown_variant(__v, __VARIANTS)),\n\
                         }}\n\
                     }}\n\
                 }}\n\
                 serde::de::Deserializer::deserialize_identifier(__d, __TagVisitor)\n\
             }}\n\
         }}\n\
         struct __Visitor;\n\
         impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
             type Value = {name};\n\
             fn expecting(&self, __f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
                 __f.write_str(\"enum {name}\")\n\
             }}\n\
             fn visit_enum<__A: serde::de::EnumAccess<'de>>(self, __data: __A)\n\
                 -> ::std::result::Result<{name}, __A::Error> {{\n\
                 let (__tag, __access) = serde::de::EnumAccess::variant::<__VariantTag>(__data)?;\n\
                 match __tag.0 {{\n\
                     {match_arms}\n\
                     _ => ::std::unreachable!(\"variant tag already validated\"),\n\
                 }}\n\
             }}\n\
         }}\n\
         serde::de::Deserializer::deserialize_enum(__deserializer, \"{name}\", __VARIANTS, __Visitor)",
        variant_list = variant_names.join(", ")
    )
}
