//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no network access, so this crate
//! reimplements the subset of parking_lot's API the workspace uses as
//! thin wrappers over `std::sync`. Semantics match parking_lot where it
//! matters to callers: `lock()`/`read()`/`write()` return guards
//! directly (no poisoning — a panicked holder does not wedge the lock).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::TryLockError;
use std::time::Duration;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn is_locked(&self) -> bool {
        match self.inner.try_lock() {
            Ok(_) => false,
            Err(TryLockError::Poisoned(_)) => false,
            Err(TryLockError::WouldBlock) => true,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(_) => panic!("poisoned mutex in get_mut"),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                inner: e.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                inner: e.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(_) => panic!("poisoned rwlock in get_mut"),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Condition variable mirroring `parking_lot::Condvar`'s no-poisoning API.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(guard, |g| self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_guard(guard, |g| {
            let (g, r) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(|e| e.into_inner());
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult { timed_out }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Runs `f` on the std guard inside `guard`, replacing it with the guard
/// `f` returns. Used to adapt std's by-value condvar waits to
/// parking_lot's by-reference API.
fn take_guard<'a, T: ?Sized>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T>,
) {
    // SAFETY: we read the guard out bitwise, hand it to `f`, and write
    // the replacement back before returning, so exactly one live copy
    // exists at every return path. If `f` panics, unwinding would drop
    // the read copy AND the caller's wrapper guard — a double unlock —
    // so we abort instead of unwinding (std's Condvar only panics on
    // multi-mutex misuse, where parking_lot deadlocks/aborts too).
    unsafe {
        let inner = std::ptr::read(&guard.inner);
        let new_inner = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(inner)))
            .unwrap_or_else(|_| std::process::abort());
        std::ptr::write(&mut guard.inner, new_inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(!m.is_locked());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait_for(&mut g, Duration::from_millis(50));
        }
        drop(g);
        t.join().unwrap();
    }
}
