//! Offline shim for the `criterion` crate.
//!
//! Compiles the workspace's benches unchanged and, when actually run
//! (`cargo bench`), times each benchmark with a warmup pass followed by
//! **repeated samples**, reporting min / median / p95 ns-per-iter (plus
//! the mean) instead of a single first-order mean — the repeated-run
//! statistics perf claims should cite. No plotting or baseline
//! comparison; `cargo bench --no-run` keeps benches compiling in CI.
//!
//! Every benchmark result is also appended to a per-group JSON file
//! under `$OM_BENCH_RESULTS_DIR` (default `results/`, created on
//! demand): `results/bench_<group>.json`, schema `om-bench-stats-v1`,
//! one entry per benchmark id with the sample statistics — the repo's
//! machine-readable perf trajectory. Set `OM_BENCH_RESULTS_DIR=` (empty)
//! to disable recording.
//!
//! Set `OM_BENCH_BASELINE=<path>` to diff each finished group against a
//! checked-in stats file (e.g. `BENCH_PR7.json`): entries are matched by
//! `"<group>/<id>"` and every hit prints `baseline -> current (ratio)`,
//! so a bench run shows its drift from the recorded reference without
//! any external tooling.

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Returns the input unchanged while defeating constant-propagation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        // Benches registered directly on the Criterion (no group) land
        // in the "misc" bucket; flush it when the harness winds down.
        flush_group("misc");
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one("", name, self.sample_size, self.measurement_time, &mut f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            "",
            &id.to_string(),
            self.sample_size,
            self.measurement_time,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_millis(300),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn sampling_mode(&mut self, _mode: SamplingMode) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id().to_string();
        run_one(&self.name, &id, self.sample_size, self.measurement_time, &mut f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id().to_string();
        run_one(&self.name, &id, self.sample_size, self.measurement_time, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Writes the group's recorded statistics to
    /// `results/bench_<group>.json`.
    pub fn finish(self) {
        flush_group(&self.name);
    }
}

#[derive(Clone, Copy, Debug)]
pub enum SamplingMode {
    Auto,
    Linear,
    Flat,
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Collects per-iteration timings from `iter` / `iter_with_setup`.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(f());
            self.elapsed += start.elapsed();
        }
    }

    pub fn iter_with_setup<S, O, SF: FnMut() -> S, F: FnMut(S) -> O>(
        &mut self,
        mut setup: SF,
        mut f: F,
    ) {
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            self.elapsed += start.elapsed();
        }
    }

    /// `iter_batched` with any batch size behaves like per-iteration
    /// setup here.
    pub fn iter_batched<S, O, SF: FnMut() -> S, F: FnMut(S) -> O>(
        &mut self,
        setup: SF,
        f: F,
        _size: BatchSize,
    ) {
        self.iter_with_setup(setup, f);
    }
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Per-iteration statistics of one benchmark over repeated samples.
#[derive(Clone, Debug)]
pub struct BenchStats {
    /// Benchmark id within its group.
    pub id: String,
    /// Samples taken (each sample times `iters_per_sample` iterations).
    pub samples: u64,
    /// Iterations timed per sample.
    pub iters_per_sample: u64,
    pub min_ns: f64,
    pub median_ns: f64,
    pub p95_ns: f64,
    pub mean_ns: f64,
}

impl BenchStats {
    fn json(&self) -> String {
        format!(
            "{{\"id\": \"{}\", \"samples\": {}, \"iters_per_sample\": {}, \
             \"min_ns\": {:.1}, \"median_ns\": {:.1}, \"p95_ns\": {:.1}, \"mean_ns\": {:.1}}}",
            self.id.replace('\\', "\\\\").replace('"', "\\\""),
            self.samples,
            self.iters_per_sample,
            self.min_ns,
            self.median_ns,
            self.p95_ns,
            self.mean_ns,
        )
    }
}

/// Benchmarks recorded so far, keyed by group, flushed to
/// `results/bench_<group>.json` as groups finish.
static RESULTS: Mutex<Vec<(String, BenchStats)>> = Mutex::new(Vec::new());

/// Cargo runs bench binaries with the *package* as the working
/// directory; paths meant to be workspace-relative (results/, checked-in
/// baselines) resolve against the outermost ancestor holding a
/// Cargo.lock — the workspace root.
fn workspace_root() -> Option<std::path::PathBuf> {
    let cwd = std::env::current_dir().ok()?;
    let root = cwd
        .ancestors()
        .filter(|dir| dir.join("Cargo.lock").is_file())
        .last()
        .unwrap_or(&cwd);
    Some(root.to_path_buf())
}

fn results_dir() -> Option<std::path::PathBuf> {
    match std::env::var("OM_BENCH_RESULTS_DIR") {
        Ok(dir) if dir.is_empty() => None,
        Ok(dir) => Some(dir.into()),
        Err(_) => Some(workspace_root()?.join("results")),
    }
}

/// Writes (or rewrites) the JSON result file of `group` from everything
/// recorded for it so far, then diffs the group against the checked-in
/// baseline if one is configured.
fn flush_group(group: &str) {
    let stats: Vec<BenchStats> = RESULTS
        .lock()
        .unwrap()
        .iter()
        .filter(|(g, _)| g == group)
        .map(|(_, s)| s.clone())
        .collect();
    diff_against_baseline(group, &stats);
    let Some(dir) = results_dir() else { return };
    let entries: Vec<String> = stats.iter().map(|s| format!("    {}", s.json())).collect();
    if entries.is_empty() {
        return;
    }
    let safe: String = group
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == '-' { c } else { '_' })
        .collect();
    let body = format!(
        "{{\n  \"schema\": \"om-bench-stats-v1\",\n  \"group\": \"{group}\",\n  \"entries\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join(format!("bench_{safe}.json")), body);
    }
}

/// Prints a baseline diff for every entry of `group` when
/// `OM_BENCH_BASELINE` names a checked-in stats file: entries match by
/// `"<group>/<id>"` and each hit reports the current median as a ratio
/// of the recorded one. Missing entries are silently skipped — a
/// baseline covers whatever slice its reference run recorded.
fn diff_against_baseline(group: &str, stats: &[BenchStats]) {
    let Ok(path) = std::env::var("OM_BENCH_BASELINE") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    // Relative baseline paths are workspace-relative, like results/.
    let mut resolved = std::path::PathBuf::from(&path);
    if resolved.is_relative() && !resolved.is_file() {
        if let Some(root) = workspace_root() {
            resolved = root.join(&path);
        }
    }
    let Ok(body) = std::fs::read_to_string(&resolved) else {
        eprintln!("criterion-shim: cannot read baseline {path}");
        return;
    };
    for s in stats {
        let full = format!("{group}/{}", s.id);
        if let Some(base) = baseline_median(&body, &full) {
            let ratio = s.median_ns / base.max(1.0);
            println!(
                "bench baseline {full:<50} {base:>12.1} -> {:>12.1} ns/iter ({ratio:.2}x)",
                s.median_ns
            );
        }
    }
}

/// Extracts the `median_ns` of the entry whose `"id"` equals `full_id`
/// from a stats-JSON body (the shim's own output format — scanned
/// textually, the shim carries no JSON dependency).
fn baseline_median(body: &str, full_id: &str) -> Option<f64> {
    let needle = format!("\"id\": \"{full_id}\"");
    let rest = &body[body.find(&needle)?..];
    let tail = rest[rest.find("\"median_ns\":")? + "\"median_ns\":".len()..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut F,
) {
    // Warmup pass with a single iteration to settle caches/lazy init.
    let mut warm = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warm);
    let per_iter = warm.elapsed.max(Duration::from_nanos(1));

    // Split roughly `measurement_time` across `sample_size` samples,
    // bounded to keep pathological benches from hanging.
    let samples = sample_size.max(2) as u64;
    let target_iters =
        (measurement_time.as_nanos() / per_iter.as_nanos().max(1) / samples as u128).max(1);
    let iterations = target_iters.min(1_000) as u64;

    let mut per_sample_ns: Vec<f64> = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let mut bencher = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        per_sample_ns.push(bencher.elapsed.as_nanos() as f64 / iterations.max(1) as f64);
    }
    per_sample_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = per_sample_ns.len();
    let min_ns = per_sample_ns[0];
    let median_ns = if n.is_multiple_of(2) {
        (per_sample_ns[n / 2 - 1] + per_sample_ns[n / 2]) / 2.0
    } else {
        per_sample_ns[n / 2]
    };
    let p95_ns = per_sample_ns[((n as f64 * 0.95).ceil() as usize).clamp(1, n) - 1];
    let mean_ns = per_sample_ns.iter().sum::<f64>() / n as f64;

    let full = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    println!(
        "bench {full:<50} median {median_ns:>12.1} ns/iter  (min {min_ns:.1}, p95 {p95_ns:.1}, {n} samples x {iterations} iters)"
    );
    RESULTS.lock().unwrap().push((
        (if group.is_empty() { "misc" } else { group }).to_string(),
        BenchStats {
            id: name.to_string(),
            samples: n as u64,
            iters_per_sample: iterations,
            min_ns,
            median_ns,
            p95_ns,
            mean_ns,
        },
    ));
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod baseline_tests {
    #[test]
    fn baseline_median_finds_the_matching_entry() {
        let body = r#"{"entries": [
            {"id": "g/w1_adaptive", "median_ns": 1500.5, "p95_ns": 2.0},
            {"id": "g/w16_adaptive", "median_ns": 300.0}
        ]}"#;
        assert_eq!(super::baseline_median(body, "g/w1_adaptive"), Some(1500.5));
        assert_eq!(super::baseline_median(body, "g/w16_adaptive"), Some(300.0));
        assert_eq!(super::baseline_median(body, "g/absent"), None);
    }
}
