//! Offline shim for the `criterion` crate.
//!
//! Compiles the workspace's benches unchanged and, when actually run
//! (`cargo bench`), times each benchmark with a simple
//! warmup-then-measure loop and prints mean ns/iter. No statistical
//! analysis, plotting, or baseline comparison — the point is that
//! `cargo bench --no-run` keeps benches compiling in CI and `cargo
//! bench` gives a usable first-order number.

use std::fmt;
use std::time::{Duration, Instant};

/// Returns the input unchanged while defeating constant-propagation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, self.measurement_time, &mut f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &id.to_string(),
            self.sample_size,
            self.measurement_time,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_millis(300),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn sampling_mode(&mut self, _mode: SamplingMode) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&full, self.sample_size, self.measurement_time, &mut f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&full, self.sample_size, self.measurement_time, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

#[derive(Clone, Copy, Debug)]
pub enum SamplingMode {
    Auto,
    Linear,
    Flat,
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Collects per-iteration timings from `iter` / `iter_with_setup`.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(f());
            self.elapsed += start.elapsed();
        }
    }

    pub fn iter_with_setup<S, O, SF: FnMut() -> S, F: FnMut(S) -> O>(
        &mut self,
        mut setup: SF,
        mut f: F,
    ) {
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            self.elapsed += start.elapsed();
        }
    }

    /// `iter_batched` with any batch size behaves like per-iteration
    /// setup here.
    pub fn iter_batched<S, O, SF: FnMut() -> S, F: FnMut(S) -> O>(
        &mut self,
        setup: SF,
        f: F,
        _size: BatchSize,
    ) {
        self.iter_with_setup(setup, f);
    }
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut F,
) {
    // Warmup pass with a single iteration to settle caches/lazy init.
    let mut warm = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warm);
    let per_iter = warm.elapsed.max(Duration::from_nanos(1));

    // Aim for roughly `measurement_time` total across `sample_size`
    // iterations, bounded to keep pathological benches from hanging.
    let target_iters = (measurement_time.as_nanos() / per_iter.as_nanos().max(1)).max(1);
    let iterations = target_iters.min(sample_size as u128 * 10).max(1) as u64;

    let mut bencher = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let total_iters = bencher.iterations.max(1);
    let mean_ns = bencher.elapsed.as_nanos() as f64 / total_iters as f64;
    println!("bench {name:<50} {mean_ns:>14.1} ns/iter ({total_iters} iters)");
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
