//! HTTP gateway: drive the full customized stack through its REST surface
//! (paper Fig. 1 — "HTTP Layer parses HTTP requests and forwards them to
//! the correct grains").
//!
//! Everything below travels as real HTTP/1.1 bytes through the in-memory
//! transport: ingestion, cart ops, checkout, a price update, a product
//! delete, the delivery batch and the seller dashboard.
//!
//! ```text
//! cargo run --release --example http_gateway
//! ```

use online_marketplace::http::{EventConfig, HttpServer, MarketplaceGateway, Method};
use online_marketplace::marketplace::CustomizedPlatform;
use serde_json::json;
use std::sync::Arc;

fn main() {
    // 1. The full-featured platform (transactions + MVCC dashboard +
    //    causal replication + audit log) behind the event-driven HTTP
    //    engine: one poll loop + a fixed worker pool serves every
    //    connection, instead of a thread per connection.
    let platform = Arc::new(CustomizedPlatform::new(Default::default()));
    let server = HttpServer::start_event_driven(
        Arc::new(MarketplaceGateway::new(platform)),
        EventConfig::default(),
    );
    let mut client = server.connect();

    println!("== health ==");
    let resp = client.request(Method::Get, "/health", None).unwrap();
    println!("GET /health -> {} {}", resp.status, String::from_utf8_lossy(&resp.body));

    // 2. Ingest a catalogue over HTTP.
    for id in 1..=2u64 {
        let resp = client
            .request(
                Method::Post,
                "/ingest/sellers",
                Some(&json!({
                    "id": id, "name": format!("seller-{id}"), "city": "copenhagen",
                    "order_entry_count": 0, "delivered_package_count": 0, "revenue": 0,
                })),
            )
            .unwrap();
        assert_eq!(resp.status, 201);
    }
    let resp = client
        .request(
            Method::Post,
            "/ingest/customers",
            Some(&json!({
                "id": 1, "name": "ada", "address": "street 1",
                "success_payment_count": 0, "failed_payment_count": 0,
                "delivery_count": 0, "abandoned_cart_count": 0, "total_spent": 0,
            })),
        )
        .unwrap();
    assert_eq!(resp.status, 201);
    for (id, seller, cents) in [(1u64, 1u64, 19_99i64), (2, 1, 5_49), (3, 2, 12_00)] {
        let resp = client
            .request(
                Method::Post,
                "/ingest/products",
                Some(&json!({
                    "product": {
                        "id": id, "seller": seller, "name": format!("widget-{id}"),
                        "category": "widgets", "description": "a fine widget",
                        "price": cents, "freight_value": 100, "version": 0, "active": true,
                    },
                    "initial_stock": 50,
                })),
            )
            .unwrap();
        assert_eq!(resp.status, 201);
    }
    println!("ingested 2 sellers, 1 customer, 3 products");

    // 3. Cart, then checkout.
    println!("\n== checkout ==");
    for (product, seller, qty) in [(1u64, 1u64, 2u32), (3, 2, 1)] {
        let resp = client
            .request(
                Method::Post,
                "/customers/1/cart/items",
                Some(&json!({"seller": seller, "product": product, "quantity": qty})),
            )
            .unwrap();
        assert_eq!(resp.status, 204);
    }
    let resp = client
        .request(
            Method::Post,
            "/customers/1/checkout",
            Some(&json!({
                "items": [
                    {"seller": 1, "product": 1, "quantity": 2},
                    {"seller": 2, "product": 3, "quantity": 1},
                ],
                "method": "CreditCard",
            })),
        )
        .unwrap();
    println!(
        "POST /customers/1/checkout -> {} {}",
        resp.status,
        String::from_utf8_lossy(&resp.body)
    );

    // 4. Let the cascade drain; price-update, delete and deliver.
    server.gateway().platform().quiesce();

    println!("\n== seller operations ==");
    let resp = client
        .request(Method::Patch, "/products/1/2/price", Some(&json!({"price": 6_99})))
        .unwrap();
    println!("PATCH /products/1/2/price -> {}", resp.status);

    let resp = client.request(Method::Delete, "/products/1/2", None).unwrap();
    println!("DELETE /products/1/2 -> {}", resp.status);

    let resp = client
        .request(Method::Patch, "/shipments/delivery?max_sellers=10", None)
        .unwrap();
    println!(
        "PATCH /shipments/delivery -> {} {}",
        resp.status,
        String::from_utf8_lossy(&resp.body)
    );

    // 5. The snapshot-consistent dashboard (MVCC offload).
    println!("\n== dashboards ==");
    for seller in 1..=2u64 {
        let resp = client
            .request(Method::Get, &format!("/sellers/{seller}/dashboard"), None)
            .unwrap();
        let dash: online_marketplace::common::entity::SellerDashboard =
            resp.json_body().unwrap();
        println!(
            "GET /sellers/{seller}/dashboard -> {} in-progress={} entries={} consistent={}",
            resp.status,
            dash.in_progress_amount,
            dash.entries.len(),
            dash.is_snapshot_consistent(),
        );
        assert!(dash.is_snapshot_consistent());
    }

    // 6. Gateway + platform counters.
    println!("\n== counters ==");
    let resp = client.request(Method::Get, "/counters", None).unwrap();
    let counters: std::collections::BTreeMap<String, u64> = resp.json_body().unwrap();
    for (k, v) in counters {
        println!("{k:<40} {v}");
    }

    // 7. Engine stats: the whole session ran on O(workers + 1) threads.
    let stats = server.stats();
    println!(
        "\n== engine ==\n{} engine: {} threads, peak {} live connection(s), {} accepted",
        server.engine_name(),
        stats.engine_threads,
        stats.max_live_connections,
        stats.accepted,
    );

    client.close();
    server.shutdown();
    println!("\ndone.");
}
