//! The cold-crash walkthrough: a marketplace gateway whose state lives
//! on disk, built to be **killed**.
//!
//! Run it, let it commit some checkouts, `kill -9` it mid-stream, run it
//! again with the same data directory — the rebuilt platform recovers
//! every committed order from the WAL/snapshot files and the persistent
//! ingress log, and keeps serving where it left off. This is the README
//! walkthrough; all traffic travels as real HTTP/1.1 bytes through the
//! gateway.
//!
//! ```text
//! cargo run --release --example durable_gateway -- /tmp/om-demo &
//! sleep 2 && kill -9 %1          # hard crash, nothing flushed on exit
//! cargo run --release --example durable_gateway -- /tmp/om-demo
//! #   -> "recovered N committed orders from /tmp/om-demo"
//! rm -rf /tmp/om-demo            # start fresh
//! ```

use online_marketplace::common::config::BackendKind;
use online_marketplace::http::{HttpServer, MarketplaceGateway, Method};
use online_marketplace::marketplace::{PlatformKind, PlatformSpec};
use serde_json::json;
use std::sync::Arc;

const CUSTOMERS: u64 = 4;
const CHECKOUTS: u64 = 2_000;

fn main() {
    let data_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "/tmp/om-durable-gateway".to_string());

    // The file-durable matrix cell, rooted at the data directory: grain
    // state + epoch checkpoints under <dir>/state, the ingress log under
    // <dir>/ingress. Rebuilding this spec over the same directory IS the
    // recovery path.
    let spec = PlatformSpec::new(PlatformKind::Dataflow, BackendKind::FileDurable)
        .parallelism(4)
        .decline_rate(0.0)
        .data_dir(&data_dir);
    let server = HttpServer::start(Arc::new(MarketplaceGateway::for_spec(&spec)), 2);
    let mut client = server.connect();

    let resp = client.request(Method::Get, "/health", None).unwrap();
    println!("GET /health -> {}", String::from_utf8_lossy(&resp.body));

    // How much survived the last life? (Nothing on a fresh directory.)
    // Keyed on the recovered catalogue, not on orders, so a kill before
    // the first committed checkout does not re-ingest the catalogue.
    let (recovered_orders, ingested) = {
        let snap = server.gateway().platform().snapshot().unwrap();
        (snap.orders.len() as u64, snap.customers.len() as u64 >= CUSTOMERS)
    };
    if ingested {
        println!("recovered {recovered_orders} committed orders from {data_dir}");
    } else {
        println!("fresh start: ingesting catalogue into {data_dir}");
        let resp = client
            .request(
                Method::Post,
                "/ingest/sellers",
                Some(&json!({
                    "id": 1, "name": "acme", "city": "odense",
                    "order_entry_count": 0, "delivered_package_count": 0, "revenue": 0,
                })),
            )
            .unwrap();
        assert_eq!(resp.status, 201);
        for id in 1..=CUSTOMERS {
            let resp = client
                .request(
                    Method::Post,
                    "/ingest/customers",
                    Some(&json!({
                        "id": id, "name": format!("c{id}"), "address": "street 1",
                        "success_payment_count": 0, "failed_payment_count": 0,
                        "delivery_count": 0, "abandoned_cart_count": 0, "total_spent": 0,
                    })),
                )
                .unwrap();
            assert_eq!(resp.status, 201);
        }
        let resp = client
            .request(
                Method::Post,
                "/ingest/products",
                Some(&json!({
                    "product": {
                        "id": 1, "seller": 1, "name": "widget",
                        "category": "widgets", "description": "a fine widget",
                        "price": 9_99, "freight_value": 0, "version": 0, "active": true,
                    },
                    "initial_stock": 1_000_000,
                })),
            )
            .unwrap();
        assert_eq!(resp.status, 201);
        server.gateway().platform().quiesce();
    }

    // Commit checkouts until killed (or until the demo target). Every
    // accepted checkout is durable the moment it returns: its epoch
    // checkpoint is one framed WAL commit on disk.
    println!("committing checkouts — `kill -9` this process any time, then rerun");
    for i in recovered_orders..CHECKOUTS {
        let customer = (i % CUSTOMERS) + 1;
        let resp = client
            .request(
                Method::Post,
                &format!("/customers/{customer}/cart/items"),
                Some(&json!({"seller": 1, "product": 1, "quantity": 1})),
            )
            .unwrap();
        assert_eq!(resp.status, 204);
        let resp = client
            .request(
                Method::Post,
                &format!("/customers/{customer}/checkout"),
                Some(&json!({"items": [], "method": "CreditCard"})),
            )
            .unwrap();
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        if (i + 1) % 100 == 0 {
            println!("  {} checkouts committed (durable)", i + 1);
        }
    }
    println!("done: {CHECKOUTS} checkouts live in {data_dir}; rerun to see them recover, `rm -rf` to reset");
}
