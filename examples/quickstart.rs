//! Quickstart: stand up a marketplace platform, load a tiny catalogue,
//! place an order and watch it flow through the services.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use online_marketplace::common::entity::{Customer, PaymentMethod, Product, Seller};
use online_marketplace::common::ids::{CustomerId, ProductId, SellerId};
use online_marketplace::common::Money;
use online_marketplace::marketplace::api::{
    CheckoutItem, CheckoutOutcome, CheckoutRequest, MarketplacePlatform,
};
use online_marketplace::marketplace::bindings::actor_core::ActorPlatformConfig;
use online_marketplace::marketplace::TransactionalPlatform;

fn main() {
    // 1. A transactional (ACID) marketplace on an in-process actor
    //    cluster: 2 silos, 4 workers each.
    let platform = TransactionalPlatform::new(ActorPlatformConfig {
        decline_rate: 0.0,
        ..Default::default()
    });

    // 2. Ingest one seller, one customer and two products with stock.
    platform
        .ingest_seller(Seller::new(SellerId(1), "acme".into(), "copenhagen".into()))
        .unwrap();
    platform
        .ingest_customer(Customer::new(CustomerId(1), "ada".into(), "street 1".into()))
        .unwrap();
    for (id, cents) in [(1u64, 19_99), (2, 5_49)] {
        platform
            .ingest_product(
                Product {
                    id: ProductId(id),
                    seller: SellerId(1),
                    name: format!("widget-{id}"),
                    category: "widgets".into(),
                    description: "a fine widget".into(),
                    price: Money::from_cents(cents),
                    freight_value: Money::from_cents(100),
                    version: 0,
                    active: true,
                },
                100,
            )
            .unwrap();
    }

    // 3. Fill the cart and check out — this runs a distributed ACID
    //    transaction across stock, order, payment, seller, customer and
    //    shipment grains (2PL + two-phase commit).
    for (product, qty) in [(1u64, 2), (2, 1)] {
        platform
            .add_to_cart(
                CustomerId(1),
                CheckoutItem {
                    seller: SellerId(1),
                    product: ProductId(product),
                    quantity: qty,
                },
            )
            .unwrap();
    }
    let outcome = platform
        .checkout(CheckoutRequest {
            customer: CustomerId(1),
            items: vec![],
            method: PaymentMethod::CreditCard,
        })
        .unwrap();
    match outcome {
        CheckoutOutcome::Placed { order, total } => {
            println!(
                "order placed: {} total {}",
                order.expect("transactional checkout returns the id"),
                total.unwrap()
            );
        }
        CheckoutOutcome::Rejected(reason) => println!("checkout rejected: {reason}"),
    }

    // 4. Deliver the packages and read the seller dashboard.
    let delivered = platform.update_delivery(10).unwrap();
    platform.quiesce();
    let dashboard = platform.seller_dashboard(SellerId(1)).unwrap();
    println!("packages delivered: {delivered}");
    println!(
        "seller dashboard: {} in-progress entries worth {}",
        dashboard.in_progress_count, dashboard.in_progress_amount
    );

    // 5. Inspect the final state.
    let snapshot = platform.snapshot().unwrap();
    println!(
        "final state: {} orders, {} payments, {} packages, stock sold: {:?}",
        snapshot.orders.len(),
        snapshot.payments.len(),
        snapshot.shipments.len(),
        snapshot
            .stock
            .iter()
            .map(|s| (s.item.key.to_string(), s.qty_sold))
            .collect::<Vec<_>>()
    );
    println!(
        "2PC decision log: {} commits, {} aborts, consistent: {}",
        platform.tx_log().commits(),
        platform.tx_log().aborts(),
        platform.tx_log().is_consistent()
    );
}
