//! Platform comparison: the paper's headline experiment in miniature —
//! runs the same checkout-heavy workload on all four implementations and
//! prints the E1-style throughput table plus criteria verdicts.
//!
//! ```text
//! cargo run --release --example platform_comparison
//! ```

use online_marketplace::common::config::{RunConfig, ScaleConfig};
use online_marketplace::driver::run_benchmark;
use online_marketplace::marketplace::api::PlatformKind;
use online_marketplace::marketplace::bindings::actor_core::ActorPlatformConfig;
use online_marketplace::marketplace::bindings::customized::CustomizedConfig;
use online_marketplace::marketplace::bindings::dataflow::DataflowPlatformConfig;
use online_marketplace::marketplace::{
    CustomizedPlatform, DataflowPlatform, EventualPlatform, TransactionalPlatform,
};

fn main() {
    let config = RunConfig {
        scale: ScaleConfig {
            sellers: 10,
            products_per_seller: 10,
            customers: 100,
            initial_stock: 100_000,
        },
        workers: 4,
        ops_per_worker: 200,
        warmup_ops_per_worker: 20,
        ..RunConfig::default()
    };

    println!("running the four Online Marketplace implementations (paper §III)...\n");
    let mut rows = Vec::new();
    for kind in [
        PlatformKind::Eventual,
        PlatformKind::Transactional,
        PlatformKind::Dataflow,
        PlatformKind::Customized,
    ] {
        let actor = ActorPlatformConfig {
            decline_rate: config.payment_decline_rate,
            ..Default::default()
        };
        let report = match kind {
            PlatformKind::Eventual => {
                run_benchmark(&EventualPlatform::new(actor), &config, true)
            }
            PlatformKind::Transactional => {
                run_benchmark(&TransactionalPlatform::new(actor), &config, true)
            }
            PlatformKind::Dataflow => run_benchmark(
                &DataflowPlatform::new(DataflowPlatformConfig::default()),
                &config,
                true,
            ),
            PlatformKind::Customized => run_benchmark(
                &CustomizedPlatform::new(CustomizedConfig {
                    actor,
                }),
                &config,
                true,
            ),
        };
        println!("{}", report.throughput_row());
        println!("  {}", report.criteria_row());
        if let Some(checkout) = report.latency_of(online_marketplace::common::config::TransactionKind::Checkout) {
            println!("  checkout latency: {checkout}");
        }
        println!();
        rows.push((report.platform.clone(), report.throughput_per_sec));
    }

    let get = |name: &str| rows.iter().find(|(n, _)| n == name).map(|(_, t)| *t).unwrap_or(0.0);
    println!("paper-shape checks:");
    println!(
        "  eventual {:.1}x transactions (paper: eventual highest, tx 'considerable overhead')",
        get("orleans_eventual") / get("orleans_transactions")
    );
    println!(
        "  statefun {:.1}x transactions (paper: ~2x)",
        get("statefun") / get("orleans_transactions")
    );
    println!(
        "  customized {:.1}x transactions (paper: comparable, low overhead)",
        get("customized_orleans") / get("orleans_transactions")
    );
}
