//! Failure recovery demo: exactly-once on the Statefun-like binding vs
//! lost effects on the eventual binding.
//!
//! * The dataflow platform takes an injected crash mid-epoch, rolls back
//!   to the last checkpoint and replays — every checkout lands exactly
//!   once.
//! * The eventual actor platform with lossy event delivery (the
//!   at-most-once semantics of raw one-way messages) strands workflows.
//!
//! ```text
//! cargo run --release --example failure_recovery
//! ```

use online_marketplace::actor::FaultConfig;
use online_marketplace::common::entity::{Customer, PaymentMethod, Product, Seller};
use online_marketplace::common::ids::{CustomerId, ProductId, SellerId};
use online_marketplace::common::Money;
use online_marketplace::marketplace::api::{
    CheckoutItem, CheckoutRequest, MarketplacePlatform,
};
use online_marketplace::marketplace::bindings::actor_core::ActorPlatformConfig;
use online_marketplace::marketplace::bindings::dataflow::DataflowPlatformConfig;
use online_marketplace::marketplace::{DataflowPlatform, EventualPlatform};

fn ingest(platform: &dyn MarketplacePlatform) {
    platform
        .ingest_seller(Seller::new(SellerId(1), "acme".into(), "odense".into()))
        .unwrap();
    for c in 1..=4u64 {
        platform
            .ingest_customer(Customer::new(CustomerId(c), format!("c{c}"), "addr".into()))
            .unwrap();
    }
    platform
        .ingest_product(
            Product {
                id: ProductId(1),
                seller: SellerId(1),
                name: "widget".into(),
                category: "cat".into(),
                description: String::new(),
                price: Money::from_cents(999),
                freight_value: Money::ZERO,
                version: 0,
                active: true,
            },
            1_000_000,
        )
        .unwrap();
    platform.quiesce();
}

fn run_checkouts(platform: &dyn MarketplacePlatform, n: u64) {
    for i in 0..n {
        let customer = CustomerId((i % 4) + 1);
        let _ = platform.add_to_cart(
            customer,
            CheckoutItem {
                seller: SellerId(1),
                product: ProductId(1),
                quantity: 1,
            },
        );
        let _ = platform.checkout(CheckoutRequest {
            customer,
            items: vec![],
            method: PaymentMethod::CreditCard,
        });
    }
    platform.quiesce();
}

fn main() {
    const CHECKOUTS: u64 = 40;

    // --- exactly-once dataflow with injected crashes --------------------
    let dataflow = DataflowPlatform::new(DataflowPlatformConfig {
        decline_rate: 0.0,
        ..Default::default()
    });
    ingest(&dataflow);
    dataflow.dataflow().inject_crash_after(30);
    run_checkouts(&dataflow, CHECKOUTS);
    let snap = dataflow.snapshot().unwrap();
    let counters = dataflow.counters();
    println!("statefun (crash injected mid-run):");
    println!(
        "  orders={} payments={} stock_sold={} stuck_workflows={} replays={}",
        snap.orders.len(),
        snap.payments.len(),
        snap.stock[0].qty_sold,
        snap.stuck_assemblies,
        counters["df.replays"],
    );
    assert_eq!(snap.orders.len() as u64, CHECKOUTS, "exactly once, even across a crash");

    // --- eventual actors with lossy events -------------------------------
    let eventual = EventualPlatform::new(ActorPlatformConfig {
        faults: FaultConfig::lossy(0.10, 0.0, 42),
        decline_rate: 0.0,
        ..Default::default()
    });
    ingest(&eventual);
    run_checkouts(&eventual, CHECKOUTS);
    let snap = eventual.snapshot().unwrap();
    println!("\norleans_eventual (10% event drop — at-most-once messaging):");
    println!(
        "  orders={} payments={} stock_sold={} stuck_workflows={} reserved_leak={}",
        snap.orders.len(),
        snap.payments.len(),
        snap.stock[0].qty_sold,
        snap.stuck_assemblies,
        snap.stock[0].item.qty_reserved,
    );
    println!("\nexactly-once recovers everything; eventual messaging strands partial work.");
}
