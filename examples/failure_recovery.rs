//! Failure recovery demo: exactly-once on the Statefun-like binding vs
//! lost effects on the eventual binding.
//!
//! * The dataflow platform takes an injected crash mid-epoch, restores
//!   the last checkpoint and replays — every checkout lands exactly
//!   once.
//! * With the **file-durable backend + persistent ingress log** the same
//!   recovery survives losing the *entire process image*: the platform
//!   is dropped wholesale and rebuilt from its `data_dir` files alone
//!   (recovered epochs vs lost epochs printed below) — the `kill -9`
//!   walkthrough in the README is this section against a live gateway.
//! * The eventual actor platform with lossy event delivery (the
//!   at-most-once semantics of raw one-way messages) strands workflows.
//!
//! ```text
//! cargo run --release --example failure_recovery
//! ```

use online_marketplace::actor::FaultConfig;
use online_marketplace::common::config::BackendKind;
use online_marketplace::common::entity::{Customer, PaymentMethod, Product, Seller};
use online_marketplace::common::ids::{CustomerId, ProductId, SellerId};
use online_marketplace::common::Money;
use online_marketplace::marketplace::api::{
    CheckoutItem, CheckoutRequest, MarketplacePlatform,
};
use online_marketplace::marketplace::bindings::actor_core::ActorPlatformConfig;
use online_marketplace::marketplace::bindings::dataflow::DataflowPlatformConfig;
use online_marketplace::marketplace::{DataflowPlatform, EventualPlatform};

fn ingest(platform: &dyn MarketplacePlatform) {
    platform
        .ingest_seller(Seller::new(SellerId(1), "acme".into(), "odense".into()))
        .unwrap();
    for c in 1..=4u64 {
        platform
            .ingest_customer(Customer::new(CustomerId(c), format!("c{c}"), "addr".into()))
            .unwrap();
    }
    platform
        .ingest_product(
            Product {
                id: ProductId(1),
                seller: SellerId(1),
                name: "widget".into(),
                category: "cat".into(),
                description: String::new(),
                price: Money::from_cents(999),
                freight_value: Money::ZERO,
                version: 0,
                active: true,
            },
            1_000_000,
        )
        .unwrap();
    platform.quiesce();
}

fn run_checkouts(platform: &dyn MarketplacePlatform, n: u64) {
    for i in 0..n {
        let customer = CustomerId((i % 4) + 1);
        let _ = platform.add_to_cart(
            customer,
            CheckoutItem {
                seller: SellerId(1),
                product: ProductId(1),
                quantity: 1,
            },
        );
        let _ = platform.checkout(CheckoutRequest {
            customer,
            items: vec![],
            method: PaymentMethod::CreditCard,
        });
    }
    platform.quiesce();
}

fn main() {
    const CHECKOUTS: u64 = 40;

    // --- exactly-once dataflow with injected crashes --------------------
    let dataflow = DataflowPlatform::new(DataflowPlatformConfig {
        decline_rate: 0.0,
        ..Default::default()
    });
    ingest(&dataflow);
    dataflow.dataflow().inject_crash_after(30);
    run_checkouts(&dataflow, CHECKOUTS);
    let snap = dataflow.snapshot().unwrap();
    let counters = dataflow.counters();
    println!("statefun (crash injected mid-run):");
    println!(
        "  orders={} payments={} stock_sold={} stuck_workflows={} replays={}",
        snap.orders.len(),
        snap.payments.len(),
        snap.stock[0].qty_sold,
        snap.stuck_assemblies,
        counters["df.replays"],
    );
    assert_eq!(snap.orders.len() as u64, CHECKOUTS, "exactly once, even across a crash");

    // --- disk-backed durability: crash mid-epoch, drop EVERYTHING, then
    // --- rebuild the whole platform from the data_dir files alone -------
    use online_marketplace::dataflow::BackendCheckpointStore;
    use online_marketplace::marketplace::bindings::dataflow::persistent_ingress;
    use std::sync::Arc;

    let data_dir = std::env::temp_dir().join(format!(
        "om-failure-recovery-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&data_dir);
    let build_durable = || {
        let backend = online_marketplace::storage::make_backend_at(
            BackendKind::FileDurable,
            16,
            Some(&data_dir.join("state")),
        )
        .expect("open durable state backend");
        DataflowPlatform::new(DataflowPlatformConfig {
            partitions: 4,
            max_batch: 64,
            workers: 0,
            decline_rate: 0.0,
            checkpoint_store: Some(Arc::new(BackendCheckpointStore::new(backend))),
            ingress: Some(
                persistent_ingress(data_dir.join("ingress"), 4)
                    .expect("open persistent ingress topic"),
            ),
        })
    };

    let durable = build_durable();
    ingest(&durable);
    durable.dataflow().inject_crash_after(25); // crash mid-epoch
    run_checkouts(&durable, CHECKOUTS);
    let epochs_before = durable.dataflow().committed_epoch();
    let (recoveries, recovery_us) = durable.dataflow().recovery_stats();
    let snap = durable.snapshot().unwrap();
    println!("\nstatefun + file_durable backend + persistent ingress (crash mid-epoch):");
    println!(
        "  orders={} committed_epoch={} recoveries={} last_recovery={}us data_dir={}",
        snap.orders.len(),
        epochs_before,
        recoveries,
        recovery_us,
        data_dir.display(),
    );
    assert_eq!(snap.orders.len() as u64, CHECKOUTS);
    drop(durable); // the whole platform dies — nothing in memory survives

    // Rebuild a brand-new platform from the directory alone: WAL +
    // snapshot recovery restores the checkpoints, the segment files
    // restore the ingress log, and the runtime restarts from the last
    // committed epoch instead of empty state.
    let reborn = build_durable();
    let recovered_epoch = reborn.dataflow().committed_epoch();
    let recovery = reborn
        .dataflow()
        .last_recovery()
        .expect("rebuild restores from the files");
    println!("  after rebuild from files: recovered_epochs={recovered_epoch} lost_epochs={} restored_keys={} ({}us)",
        epochs_before - recovered_epoch,
        recovery.restored_keys,
        recovery.duration.as_micros(),
    );
    assert_eq!(recovered_epoch, epochs_before, "no committed epoch is lost");
    // The stock function's state survived: all sold quantity is still
    // accounted for in the rebuilt platform.
    let dash = reborn
        .seller_dashboard(SellerId(1))
        .expect("seller state survives the rebuild");
    assert_eq!(dash.seller, SellerId(1));
    drop(reborn);
    let _ = std::fs::remove_dir_all(&data_dir);

    // --- eventual actors with lossy events -------------------------------
    let eventual = EventualPlatform::new(ActorPlatformConfig {
        faults: FaultConfig::lossy(0.10, 0.0, 42),
        decline_rate: 0.0,
        ..Default::default()
    });
    ingest(&eventual);
    run_checkouts(&eventual, CHECKOUTS);
    let snap = eventual.snapshot().unwrap();
    println!("\norleans_eventual (10% event drop — at-most-once messaging):");
    println!(
        "  orders={} payments={} stock_sold={} stuck_workflows={} reserved_leak={}",
        snap.orders.len(),
        snap.payments.len(),
        snap.stock[0].qty_sold,
        snap.stuck_assemblies,
        snap.stock[0].item.qty_reserved,
    );
    println!("\nexactly-once recovers everything; eventual messaging strands partial work.");
}
