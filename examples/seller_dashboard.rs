//! Seller dashboard consistency demo (paper §II, *Seller Dashboard*
//! criterion): under concurrent checkout churn, the two dashboard
//! queries tear on the plain actor platform but stay snapshot-consistent
//! on the customized stack (MVCC offload).
//!
//! ```text
//! cargo run --release --example seller_dashboard
//! ```

use online_marketplace::common::entity::{Customer, PaymentMethod, Product, Seller};
use online_marketplace::common::ids::{CustomerId, ProductId, SellerId};
use online_marketplace::common::Money;
use online_marketplace::marketplace::api::{
    CheckoutItem, CheckoutRequest, MarketplacePlatform,
};
use online_marketplace::marketplace::bindings::actor_core::ActorPlatformConfig;
use online_marketplace::marketplace::bindings::customized::CustomizedConfig;
use online_marketplace::marketplace::{CustomizedPlatform, EventualPlatform};

fn ingest(platform: &dyn MarketplacePlatform) {
    platform
        .ingest_seller(Seller::new(SellerId(1), "acme".into(), "aarhus".into()))
        .unwrap();
    for c in 1..=8u64 {
        platform
            .ingest_customer(Customer::new(CustomerId(c), format!("c{c}"), "addr".into()))
            .unwrap();
    }
    for p in 1..=4u64 {
        platform
            .ingest_product(
                Product {
                    id: ProductId(p),
                    seller: SellerId(1),
                    name: format!("p{p}"),
                    category: "cat".into(),
                    description: String::new(),
                    price: Money::from_cents(100 * p as i64),
                    freight_value: Money::ZERO,
                    version: 0,
                    active: true,
                },
                1_000_000,
            )
            .unwrap();
    }
    platform.quiesce();
}

/// Hammers checkouts + deliveries while probing the dashboard; returns
/// (probes, torn).
fn probe(platform: &dyn MarketplacePlatform, rounds: usize) -> (u64, u64) {
    ingest(platform);
    let mut torn = 0u64;
    let mut probes = 0u64;
    std::thread::scope(|scope| {
        let churn = scope.spawn(move || {
            for i in 0..rounds {
                let customer = CustomerId((i as u64 % 8) + 1);
                for p in 1..=2u64 {
                    let _ = platform.add_to_cart(
                        customer,
                        CheckoutItem {
                            seller: SellerId(1),
                            product: ProductId(p),
                            quantity: 1,
                        },
                    );
                }
                let _ = platform.checkout(CheckoutRequest {
                    customer,
                    items: vec![],
                    method: PaymentMethod::CreditCard,
                });
                if i % 7 == 0 {
                    let _ = platform.update_delivery(10);
                }
            }
        });
        while !churn.is_finished() {
            if let Ok(dashboard) = platform.seller_dashboard(SellerId(1)) {
                probes += 1;
                if !dashboard.is_snapshot_consistent() {
                    torn += 1;
                }
            }
        }
        churn.join().unwrap();
    });
    (probes, torn)
}

fn main() {
    println!("probing dashboards under checkout churn...\n");

    let eventual = EventualPlatform::new(ActorPlatformConfig {
        decline_rate: 0.0,
        ..Default::default()
    });
    let (probes, torn) = probe(&eventual, 400);
    println!(
        "orleans_eventual : {probes} probes, {torn} torn dashboards ({:.2}%)",
        100.0 * torn as f64 / probes.max(1) as f64
    );

    // The customized stack's dashboard projection lives in the unified
    // StateBackend; its consistency guarantee is the backend's. Run the
    // snapshot-isolation cell (the paper's PostgreSQL offload).
    let customized = CustomizedPlatform::new(CustomizedConfig {
        actor: ActorPlatformConfig {
            decline_rate: 0.0,
            backend: online_marketplace::common::config::BackendKind::SnapshotIsolation,
            ..Default::default()
        },
    });
    let (probes, torn) = probe(&customized, 400);
    println!(
        "customized+snapshot_isolation : {probes} probes, {torn} torn dashboards ({:.2}%)",
        100.0 * torn as f64 / probes.max(1) as f64
    );
    println!("\nover the snapshot-isolation backend the dashboard scan reads one MVCC");
    println!("snapshot — 0 torn reads, the consistent-querying criterion. The same");
    println!("binding over eventual_kv gives that guarantee up (the matrix's trade).");
}
