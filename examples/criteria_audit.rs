//! Criteria audit demo: runs the anomaly-hunting workload mix on every
//! platform and prints the measured data-management criteria matrix —
//! the paper's core finding ("no single data platform supports all the
//! core data management requirements") made quantitative.
//!
//! ```text
//! cargo run --release --example criteria_audit
//! ```

use online_marketplace::actor::FaultConfig;
use online_marketplace::common::config::{RunConfig, ScaleConfig, WorkloadMix};
use online_marketplace::driver::run_benchmark;
use online_marketplace::marketplace::bindings::actor_core::ActorPlatformConfig;
use online_marketplace::marketplace::bindings::customized::CustomizedConfig;
use online_marketplace::marketplace::bindings::dataflow::DataflowPlatformConfig;
use online_marketplace::marketplace::{
    CustomizedPlatform, DataflowPlatform, EventualPlatform, TransactionalPlatform,
};

fn main() {
    let config = RunConfig {
        scale: ScaleConfig {
            sellers: 8,
            products_per_seller: 10,
            customers: 80,
            initial_stock: 100_000,
        },
        mix: WorkloadMix::anomaly_hunting(),
        workers: 4,
        ops_per_worker: 150,
        warmup_ops_per_worker: 10,
        ..RunConfig::default()
    };

    // Raw actor one-way events are at-most-once: model with a lossy
    // channel on the two plain Orleans bindings.
    let lossy = FaultConfig::lossy(0.02, 0.01, 7);
    let lossy_actor = ActorPlatformConfig {
        faults: lossy,
        decline_rate: config.payment_decline_rate,
        ..Default::default()
    };
    // The customized stack's consistent-dashboard criterion is the
    // snapshot-isolation backend's guarantee (the paper's PostgreSQL
    // offload); run its cell over that backend.
    let reliable_actor = ActorPlatformConfig {
        decline_rate: config.payment_decline_rate,
        backend: online_marketplace::common::config::BackendKind::SnapshotIsolation,
        ..Default::default()
    };

    println!("criteria matrix under the anomaly-hunting mix (paper §II criteria):\n");
    let eventual = EventualPlatform::new(lossy_actor.clone());
    let report = run_benchmark(&eventual, &config, true);
    println!("{}", report.criteria_row());

    let transactional = TransactionalPlatform::new(lossy_actor);
    let report = run_benchmark(&transactional, &config, true);
    println!("{}", report.criteria_row());

    let dataflow = DataflowPlatform::new(DataflowPlatformConfig {
        decline_rate: config.payment_decline_rate,
        ..Default::default()
    });
    let report = run_benchmark(&dataflow, &config, true);
    println!("{}", report.criteria_row());

    let customized = CustomizedPlatform::new(CustomizedConfig {
        actor: reliable_actor,
    });
    let report = run_benchmark(&customized, &config, true);
    println!("{}", report.criteria_row());
    let all = report.criteria.all_satisfied();
    println!(
        "\ncustomized stack satisfies all criteria: {all} — the paper's full-featured Fig. 1 design"
    );
}
