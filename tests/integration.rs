//! Workspace-level integration tests: drive the full stack through the
//! umbrella crate exactly the way a downstream user would.

use online_marketplace::common::config::{RunConfig, ScaleConfig, WorkloadMix};
use online_marketplace::driver::{run_benchmark, RunReport};
use online_marketplace::marketplace::api::{MarketplacePlatform, PlatformKind};
use online_marketplace::marketplace::bindings::actor_core::ActorPlatformConfig;
use online_marketplace::marketplace::bindings::customized::CustomizedConfig;
use online_marketplace::marketplace::bindings::dataflow::DataflowPlatformConfig;
use online_marketplace::marketplace::{
    CustomizedPlatform, DataflowPlatform, EventualPlatform, TransactionalPlatform,
};

fn tiny_config() -> RunConfig {
    RunConfig {
        scale: ScaleConfig {
            sellers: 3,
            products_per_seller: 6,
            customers: 12,
            initial_stock: 10_000,
        },
        workers: 2,
        ops_per_worker: 60,
        warmup_ops_per_worker: 5,
        ..RunConfig::default()
    }
}

fn run(kind: PlatformKind, config: &RunConfig) -> RunReport {
    let actor = ActorPlatformConfig {
        decline_rate: config.payment_decline_rate,
        backend: config.backend,
        ..Default::default()
    };
    match kind {
        PlatformKind::Eventual => run_benchmark(&EventualPlatform::new(actor), config, true),
        PlatformKind::Transactional => {
            run_benchmark(&TransactionalPlatform::new(actor), config, true)
        }
        PlatformKind::Dataflow => run_benchmark(
            &DataflowPlatform::new(DataflowPlatformConfig {
                decline_rate: config.payment_decline_rate,
                ..Default::default()
            }),
            config,
            true,
        ),
        PlatformKind::Customized => run_benchmark(
            &CustomizedPlatform::new(CustomizedConfig {
                actor,
            }),
            config,
            true,
        ),
    }
}

#[test]
fn full_stack_smoke_on_all_four_platforms() {
    let config = tiny_config();
    for kind in [
        PlatformKind::Eventual,
        PlatformKind::Transactional,
        PlatformKind::Dataflow,
        PlatformKind::Customized,
    ] {
        let report = run(kind, &config);
        assert!(report.operations > 0, "{kind:?} did nothing");
        assert_eq!(
            report.criteria.conservation_violations, 0,
            "{kind:?} lost stock units"
        );
        assert!(report.throughput_per_sec > 0.0);
    }
}

#[test]
fn acid_platforms_have_zero_atomicity_violations() {
    let config = tiny_config();
    for kind in [PlatformKind::Transactional, PlatformKind::Customized] {
        let report = run(kind, &config);
        assert_eq!(
            report.criteria.atomicity_violations, 0,
            "{kind:?} violated all-or-nothing: {:?}",
            report.criteria
        );
    }
}

#[test]
fn customized_platform_is_fully_criteria_clean() {
    let mut config = tiny_config();
    config.mix = WorkloadMix::anomaly_hunting();
    // The all-criteria cell: with the dashboard projection living in the
    // unified StateBackend, the consistent-querying criterion is the
    // snapshot-isolation backend's guarantee (under eventual_kv the same
    // binding may serve torn dashboards — the trade the matrix measures).
    config.backend = online_marketplace::common::config::BackendKind::SnapshotIsolation;
    let report = run(PlatformKind::Customized, &config);
    assert!(
        report.criteria.all_satisfied(),
        "customized stack must satisfy every criterion: {:?}",
        report.criteria
    );
}

#[test]
fn umbrella_reexports_compose() {
    // Substrate types are reachable through the umbrella crate and
    // interoperate (kv + mvcc + log + actor + dataflow in one program).
    use online_marketplace::common::config::ReplicationMode;
    use online_marketplace::kv::{ReplicatedKv, Session};
    use online_marketplace::log::Topic;
    use online_marketplace::mvcc::{IsolationLevel, TxManager};
    use std::sync::Arc;

    let kv: ReplicatedKv<u64, String> = ReplicatedKv::new(ReplicationMode::Causal, 4, 1, 1);
    let mut session = Session::new();
    kv.put(&mut session, 1, "hello".into());
    kv.quiesce();
    assert_eq!(kv.get_secondary(&mut session, &1).value.as_deref(), Some("hello"));

    let mgr = TxManager::new();
    let table = mgr.create_table::<u64, u64>("t");
    mgr.run(IsolationLevel::Serializable, 4, |tx| {
        table.put(tx, 1, 42);
        Ok(())
    })
    .unwrap();

    let topic: Arc<Topic<u64>> = Arc::new(Topic::new("t", 2));
    let producer = topic.producer();
    producer.send(0, 7).unwrap();
    assert_eq!(topic.len(), 1);
}

#[test]
fn deterministic_workload_generation_across_runs() {
    use online_marketplace::common::rng::SplitMix64;
    use online_marketplace::driver::DataGenerator;

    let config = tiny_config();
    // Same seed => same generated catalogue (probe via two generators).
    let mut a = DataGenerator::new(config.scale, config.seed);
    let mut b = DataGenerator::new(config.scale, config.seed);
    let pa = EventualPlatform::new(ActorPlatformConfig::default());
    let pb = EventualPlatform::new(ActorPlatformConfig::default());
    a.ingest_all(&pa).unwrap();
    b.ingest_all(&pb).unwrap();
    let sa = pa.snapshot().unwrap();
    let sb = pb.snapshot().unwrap();
    assert_eq!(sa.products, sb.products, "generation must be deterministic");

    let mut r1 = SplitMix64::new(9);
    let mut r2 = SplitMix64::new(9);
    assert_eq!(
        (0..100).map(|_| r1.next_u64()).collect::<Vec<_>>(),
        (0..100).map(|_| r2.next_u64()).collect::<Vec<_>>()
    );
}
