//! Workspace bootstrap smoke test: the umbrella crate's re-exports
//! resolve, and a minimal end-to-end checkout flows through a platform
//! binding. This is the canary for PR-level wiring mistakes (missing
//! member crates, broken re-exports, serde shims that stopped
//! round-tripping) — it exercises one thin path through every layer
//! rather than re-testing domain logic.

use online_marketplace::common::entity::{Customer, PaymentMethod, Product, Seller};
use online_marketplace::common::ids::{CustomerId, ProductId, SellerId};
use online_marketplace::common::Money;
use online_marketplace::marketplace::api::{
    CheckoutItem, CheckoutOutcome, CheckoutRequest, MarketplacePlatform,
};
use online_marketplace::marketplace::bindings::actor_core::ActorPlatformConfig;
use online_marketplace::marketplace::TransactionalPlatform;

/// Every umbrella module path must resolve; referencing one type from
/// each member keeps the re-export list honest as crates are added.
#[test]
fn umbrella_reexports_resolve() {
    let _ = std::any::type_name::<online_marketplace::common::Money>();
    let _ = std::any::type_name::<online_marketplace::kv::ReplicatedKv<u64, u64>>();
    let _ = std::any::type_name::<online_marketplace::mvcc::TxManager>();
    let _ = std::any::type_name::<online_marketplace::log::Topic<u64>>();
    let _ = std::any::type_name::<online_marketplace::actor::GrainId>();
    let _ = std::any::type_name::<online_marketplace::dataflow::Dataflow<()>>();
    let _ = std::any::type_name::<online_marketplace::marketplace::TransactionalPlatform>();
    let _ = std::any::type_name::<online_marketplace::driver::RunReport>();
    let _ = std::any::type_name::<online_marketplace::http::MarketplaceGateway>();
}

#[test]
fn minimal_checkout_flows_end_to_end() {
    let platform = TransactionalPlatform::new(ActorPlatformConfig {
        decline_rate: 0.0,
        ..Default::default()
    });

    platform
        .ingest_seller(Seller::new(SellerId(1), "acme".into(), "copenhagen".into()))
        .expect("seller ingests");
    platform
        .ingest_customer(Customer::new(CustomerId(1), "ada".into(), "street 1".into()))
        .expect("customer ingests");
    platform
        .ingest_product(
            Product {
                id: ProductId(1),
                seller: SellerId(1),
                name: "widget".into(),
                category: "widgets".into(),
                description: "a fine widget".into(),
                price: Money::from_cents(19_99),
                freight_value: Money::from_cents(1_00),
                version: 0,
                active: true,
            },
            100,
        )
        .expect("product ingests");

    platform
        .add_to_cart(
            CustomerId(1),
            CheckoutItem {
                seller: SellerId(1),
                product: ProductId(1),
                quantity: 2,
            },
        )
        .expect("cart accepts item");

    let outcome = platform
        .checkout(CheckoutRequest {
            customer: CustomerId(1),
            items: vec![],
            method: PaymentMethod::CreditCard,
        })
        .expect("checkout executes");

    let CheckoutOutcome::Placed { order, total } = outcome else {
        panic!("zero-decline checkout with stock must place the order, got {outcome:?}");
    };
    assert!(order.is_some(), "transactional checkout returns an order id");
    let total = total.expect("placed checkout carries a total");
    // 2 × 19.99 + freight 1.00 per unit.
    assert!(
        total >= Money::from_cents(2 * 19_99),
        "total {total} must cover the two units"
    );

    platform.quiesce();
    let snapshot = platform.snapshot().expect("snapshot readable");
    assert_eq!(snapshot.orders.len(), 1, "exactly one order placed");
    assert!(
        !snapshot.payments.is_empty(),
        "payment recorded for the order"
    );
}
