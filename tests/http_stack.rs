//! Integration: every one of the four platform bindings can sit behind
//! the HTTP layer (paper Fig. 1) and serve the five business
//! transactions over the wire.

use online_marketplace::http::{HttpServer, MarketplaceGateway, Method};
use online_marketplace::marketplace::api::{MarketplacePlatform, PlatformKind};
use online_marketplace::marketplace::bindings::actor_core::ActorPlatformConfig;
use online_marketplace::marketplace::bindings::dataflow::{
    DataflowPlatform, DataflowPlatformConfig,
};
use online_marketplace::marketplace::{
    CustomizedPlatform, EventualPlatform, TransactionalPlatform,
};
use serde_json::json;
use std::sync::Arc;

fn platform(kind: PlatformKind) -> Arc<dyn MarketplacePlatform> {
    let actor = ActorPlatformConfig {
        decline_rate: 0.0,
        ..Default::default()
    };
    match kind {
        PlatformKind::Eventual => Arc::new(EventualPlatform::new(actor)),
        PlatformKind::Transactional => Arc::new(TransactionalPlatform::new(actor)),
        PlatformKind::Dataflow => Arc::new(DataflowPlatform::new(DataflowPlatformConfig {
            partitions: 2,
            max_batch: 64,
            decline_rate: 0.0,
            ..Default::default()
        })),
        PlatformKind::Customized => Arc::new(CustomizedPlatform::new(
            online_marketplace::marketplace::bindings::customized::CustomizedConfig {
                actor,
            },
        )),
    }
}

/// Runs the five transactions over HTTP and returns the final counters.
fn exercise(kind: PlatformKind) -> std::collections::BTreeMap<String, u64> {
    let server = HttpServer::start(Arc::new(MarketplaceGateway::new(platform(kind))), 2);
    let mut client = server.connect();

    // Ingestion.
    assert_eq!(
        client
            .request(
                Method::Post,
                "/ingest/sellers",
                Some(&json!({
                    "id": 1, "name": "s1", "city": "cph",
                    "order_entry_count": 0, "delivered_package_count": 0, "revenue": 0,
                })),
            )
            .unwrap()
            .status,
        201,
        "{kind:?} seller ingest"
    );
    assert_eq!(
        client
            .request(
                Method::Post,
                "/ingest/customers",
                Some(&json!({
                    "id": 1, "name": "c1", "address": "a",
                    "success_payment_count": 0, "failed_payment_count": 0,
                    "delivery_count": 0, "abandoned_cart_count": 0, "total_spent": 0,
                })),
            )
            .unwrap()
            .status,
        201
    );
    for p in 1..=2u64 {
        let resp = client
            .request(
                Method::Post,
                "/ingest/products",
                Some(&json!({
                    "product": {
                        "id": p, "seller": 1, "name": format!("p{p}"),
                        "category": "c", "description": "d",
                        "price": 1000, "freight_value": 10,
                        "version": 0, "active": true,
                    },
                    "initial_stock": 10,
                })),
            )
            .unwrap();
        assert_eq!(
            resp.status,
            201,
            "{kind:?} product ingest: {}",
            String::from_utf8_lossy(&resp.body)
        );
    }

    // Ingestion is asynchronous on the dataflow binding — drain it, as
    // the benchmark driver does between ingestion and workload phases.
    server.gateway().platform().quiesce();

    // Customer Checkout.
    assert_eq!(
        client
            .request(
                Method::Post,
                "/customers/1/cart/items",
                Some(&json!({"seller": 1, "product": 1, "quantity": 1})),
            )
            .unwrap()
            .status,
        204
    );
    let resp = client
        .request(
            Method::Post,
            "/customers/1/checkout",
            Some(&json!({
                "items": [{"seller": 1, "product": 1, "quantity": 1}],
                "method": "CreditCard",
            })),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{kind:?} checkout over HTTP");

    server.gateway().platform().quiesce();

    // Price Update.
    assert_eq!(
        client
            .request(Method::Patch, "/products/1/2/price", Some(&json!({"price": 777})))
            .unwrap()
            .status,
        204,
        "{kind:?} price update"
    );
    // Product Delete.
    assert_eq!(
        client
            .request(Method::Delete, "/products/1/2", None)
            .unwrap()
            .status,
        204,
        "{kind:?} product delete"
    );
    // Update Delivery.
    let resp = client
        .request(Method::Patch, "/shipments/delivery", None)
        .unwrap();
    assert_eq!(resp.status, 200);
    // Seller Dashboard.
    let resp = client
        .request(Method::Get, "/sellers/1/dashboard", None)
        .unwrap();
    assert_eq!(resp.status, 200, "{kind:?} dashboard");

    let counters: std::collections::BTreeMap<String, u64> = client
        .request(Method::Get, "/counters", None)
        .unwrap()
        .json_body()
        .unwrap();
    client.close();
    server.shutdown();
    counters
}

#[test]
fn eventual_platform_serves_all_transactions_over_http() {
    let counters = exercise(PlatformKind::Eventual);
    assert!(counters["gateway_requests"] >= 11);
    assert_eq!(counters["gateway_server_errors"], 0);
}

#[test]
fn transactional_platform_serves_all_transactions_over_http() {
    let counters = exercise(PlatformKind::Transactional);
    assert_eq!(counters["gateway_server_errors"], 0);
    assert!(
        counters.get("tx_commits").copied().unwrap_or(0) >= 1,
        "checkout must have committed a distributed transaction: {counters:?}"
    );
}

#[test]
fn dataflow_platform_serves_all_transactions_over_http() {
    let counters = exercise(PlatformKind::Dataflow);
    assert_eq!(counters["gateway_server_errors"], 0);
}

#[test]
fn customized_platform_serves_all_transactions_over_http() {
    let counters = exercise(PlatformKind::Customized);
    assert_eq!(counters["gateway_server_errors"], 0);
    assert!(
        counters.get("audit.records").copied().unwrap_or(0) >= 1,
        "customized stack must audit-log over HTTP too: {counters:?}"
    );
}
