//! Paper-shape regression tests: tiny-scale versions of the qualitative
//! claims the reproduction must preserve (§III of the paper). These are
//! deliberately generous — they assert orderings and existence, not
//! absolute numbers — so they hold on any machine.

use online_marketplace::common::config::{RunConfig, ScaleConfig, WorkloadMix};
use online_marketplace::driver::run_benchmark;
use online_marketplace::marketplace::api::MarketplacePlatform;
use online_marketplace::marketplace::bindings::actor_core::ActorPlatformConfig;
use online_marketplace::marketplace::bindings::customized::CustomizedConfig;
use online_marketplace::marketplace::{
    CustomizedPlatform, EventualPlatform, TransactionalPlatform,
};

fn config() -> RunConfig {
    RunConfig {
        scale: ScaleConfig {
            sellers: 4,
            products_per_seller: 10,
            customers: 24,
            initial_stock: 50_000,
        },
        mix: WorkloadMix::checkout_only(),
        workers: 2,
        ops_per_worker: 80,
        warmup_ops_per_worker: 10,
        zipf_theta: 0.5,
        ..RunConfig::default()
    }
}

fn throughput(platform: &dyn MarketplacePlatform) -> f64 {
    run_benchmark(platform, &config(), true).throughput_per_sec
}

/// E1/E5 shape: the eventual binding out-runs the transactional one
/// (paper: transactions come "at a considerable overhead").
#[test]
fn eventual_outperforms_transactions() {
    let actor = ActorPlatformConfig {
        decline_rate: 0.05,
        ..Default::default()
    };
    let eventual = throughput(&EventualPlatform::new(actor.clone()));
    let transactional = throughput(&TransactionalPlatform::new(actor));
    assert!(
        eventual > transactional,
        "paper shape violated: eventual {eventual:.0} ops/s <= transactions {transactional:.0} ops/s"
    );
}

/// E7 shape: the customized stack stays within a small factor of the
/// plain transactional binding (paper: "low overhead ... comparable").
#[test]
fn customized_overhead_is_bounded() {
    let actor = ActorPlatformConfig {
        decline_rate: 0.05,
        ..Default::default()
    };
    let transactional = throughput(&TransactionalPlatform::new(actor.clone()));
    let customized = throughput(&CustomizedPlatform::new(CustomizedConfig {
        actor,
    }));
    let ratio = customized / transactional;
    assert!(
        ratio > 0.3,
        "customized should be comparable to transactions, got {ratio:.2}x \
         (customized {customized:.0} vs transactional {transactional:.0})"
    );
}
