//! # Online Marketplace (Rust)
//!
//! Umbrella crate for the Online Marketplace microservice benchmark — a
//! from-scratch Rust reproduction of *Benchmarking Data Management Systems
//! for Microservices* (Laigner & Zhou, ICDE 2024).
//!
//! This crate re-exports the workspace members so that examples and
//! integration tests can drive the whole stack through one dependency:
//!
//! * [`common`] — ids, entities, events, time, config, stats, RNG.
//! * [`kv`] — Redis-like replicated key-value store (eventual/causal).
//! * [`mvcc`] — PostgreSQL-like multi-version storage engine (snapshot
//!   isolation).
//! * [`storage`] — the unified `StateBackend` layer: one sharded,
//!   pluggable storage interface (eventual KV / snapshot isolation)
//!   behind every platform binding.
//! * [`log`] — Kafka-like partitioned event log (idempotent producers).
//! * [`actor`] — Orleans-like virtual actor runtime with a distributed
//!   transaction layer (2PL + 2PC).
//! * [`dataflow`] — Statefun-like exactly-once stateful dataflow runtime.
//! * [`marketplace`] — the eight microservices and the four platform
//!   bindings (Eventual, Transactional, Dataflow, Customized).
//! * [`driver`] — benchmark driver: data generation, workload submission,
//!   metrics and the data-management criteria auditor.
//! * [`http`] — the HTTP layer of the customized stack (paper Fig. 1):
//!   HTTP/1.1 parser, router, REST gateway, in-memory server.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

pub use om_actor as actor;
pub use om_common as common;
pub use om_dataflow as dataflow;
pub use om_driver as driver;
pub use om_http as http;
pub use om_kv as kv;
pub use om_log as log;
pub use om_marketplace as marketplace;
pub use om_mvcc as mvcc;
pub use om_storage as storage;
